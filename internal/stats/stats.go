// Package stats provides the deterministic random number generation and
// small-sample statistics used throughout the reproduction.
//
// Every stochastic component in the repository (workload generation, the
// synthetic design generator, fault-injection campaigns, the simulated beam
// test) draws from a seeded SplitMix64 stream so that all experiments are
// reproducible bit-for-bit.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New to make
// seeding explicit.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child stream from the current state and a
// stream label. Forking lets concurrent or per-item consumers (e.g. one
// stream per injected fault) obtain decorrelated sequences that do not
// depend on consumption order elsewhere.
func (r *RNG) Fork(label uint64) *RNG {
	// Mix the label through one SplitMix64 round of the parent state.
	x := r.Uint64() ^ (label * 0x9E3779B97F4A7C15)
	return &RNG{state: x}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
// It uses Lemire's nearly-divisionless rejection sampling
// (arXiv:1805.10941): the naive Uint64()%n is modulo-biased for any n
// that is not a power of two, over-weighting the low residues — enough
// to skew SFI site/cycle draws and generated-design shapes at scale.
// Rejection keeps the draw exactly uniform; the slow path (one modulo
// plus possible redraws) triggers with probability < n/2^64.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un // (2^64 - n) mod n: size of the biased remainder zone
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Poisson returns a Poisson-distributed count with mean lambda.
// For large lambda it falls back to a normal approximation, which is
// adequate for the beam-test error-count simulation.
func (r *RNG) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("stats: Poisson with negative lambda")
	}
	if lambda == 0 {
		return 0
	}
	if lambda > 500 {
		n := r.Norm(lambda, math.Sqrt(lambda))
		if n < 0 {
			return 0
		}
		return int(n + 0.5)
	}
	// Knuth's algorithm.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns the weighted mean of xs with weights ws.
// It panics if the slices differ in length and returns 0 when the total
// weight is zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sum, wsum float64
	for i, x := range xs {
		sum += x * ws[i]
		wsum += ws[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are provided.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Contains reports whether v lies within the interval.
func (iv Interval) Contains(v float64) bool {
	return v >= iv.Lo && v <= iv.Hi
}

// Width returns the full width of the interval.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// PoissonCI returns the approximate 95% confidence interval for a rate
// estimated from an observed Poisson count k over an exposure e
// (rate = k/e). It uses the normal approximation k ± 1.96*sqrt(k), with
// a floor so that a zero count still yields a non-degenerate interval.
func PoissonCI(k int, exposure float64) Interval {
	if exposure <= 0 {
		panic("stats: PoissonCI with non-positive exposure")
	}
	rate := float64(k) / exposure
	half := 1.96 * math.Sqrt(float64(k)) / exposure
	if k == 0 {
		half = 3.0 / exposure // rule of three upper bound
	}
	lo := rate - half
	if lo < 0 {
		lo = 0
	}
	return Interval{Point: rate, Lo: lo, Hi: rate + half}
}

// BinomialCI returns the approximate 95% confidence interval for a
// proportion estimated from k successes in n trials (Wald interval with a
// small-sample floor). It is used for SFI-measured AVFs.
func BinomialCI(k, n int) Interval {
	if n <= 0 {
		panic("stats: BinomialCI with non-positive n")
	}
	p := float64(k) / float64(n)
	half := 1.96 * math.Sqrt(p*(1-p)/float64(n))
	if k == 0 || k == n {
		half = 3.0 / float64(n)
	}
	lo := p - half
	if lo < 0 {
		lo = 0
	}
	hi := p + half
	if hi > 1 {
		hi = 1
	}
	return Interval{Point: p, Lo: lo, Hi: hi}
}
