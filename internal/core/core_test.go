package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
)

func mustAnalyze(t *testing.T, d *netlist.Design, opts Options) *Analyzer {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatalf("graph.Build: %v", err)
	}
	a, err := NewAnalyzer(g, opts)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	return a
}

func vtx(t *testing.T, a *Analyzer, fub, node string) graph.VertexID {
	t.Helper()
	v, _, ok := a.G.VertexBase(fub, node)
	if !ok {
		t.Fatalf("vertex %s/%s not found", fub, node)
	}
	return v
}

func approx(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

// figure7 reconstructs the paper's worked propagation example: structures
// S1 and S2 feed a network of sequentials (Q*) and gates (G1, G2) that
// drives the write ports of S3 and S4.
func figure7(t *testing.T) (*Analyzer, *Inputs) {
	t.Helper()
	d := netlist.NewDesign("fig7")
	for _, s := range []string{"S1", "S2", "S3", "S4"} {
		d.AddStructure(s, 4, 1)
	}
	m := d.AddModule("m")
	b := netlist.Build(m)
	s1 := b.SRead("s1_rd", 1, "S1", "rd")
	s2 := b.SRead("s2_rd", 1, "S2", "rd")
	q1a := b.Seq("q1a", 1, s1)
	q2a := b.Seq("q2a", 1, q1a)
	q1b := b.Seq("q1b", 1, s2)
	g1 := b.C("g1", 1, netlist.OpNor, q1a, q1b)
	q3b := b.Seq("q3b", 1, g1)
	g2 := b.C("g2", 1, netlist.OpNor, q2a, g1)
	q3a := b.Seq("q3a", 1, g2)
	b.SWrite("s3_wr", "S3", "wr", q3a)
	b.SWrite("s4_wr", "S4", "wr", q3b)
	d.AddFub("F", "m")

	a := mustAnalyze(t, d, DefaultOptions())
	in := NewInputs()
	in.ReadPorts[StructPort{"S1", "rd"}] = 0.10
	in.ReadPorts[StructPort{"S2", "rd"}] = 0.02
	in.WritePorts[StructPort{"S3", "wr"}] = 0.50
	in.WritePorts[StructPort{"S4", "wr"}] = 0.20
	return a, in
}

// TestFigure7 verifies the full worked example from §4.2 of the paper,
// including the idempotent union at G2.
func TestFigure7(t *testing.T) {
	a, in := figure7(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	cases := map[string]float64{
		"q1a": 0.10, // forward pAVF_1; backward 0.7
		"q2a": 0.10, // simple pipe from S1
		"q1b": 0.02, // forward pAVF_2
		"g1":  0.12, // union pAVF_1 + pAVF_2
		"g2":  0.12, // pAVF_1 U (pAVF_1 U pAVF_2) = 0.12, NOT 0.22
		"q3a": 0.12,
		"q3b": 0.12, // min(0.12 fwd, 0.2 bwd) = 0.12
	}
	for node, want := range cases {
		v := vtx(t, a, "F", node)
		approx(t, r.AVF[v], want, node)
	}
	// Backward estimates (Expr sides): Q1a's backward walk sees the union
	// of the two downstream write ports: 0.5 + 0.2 = 0.7.
	q1a := vtx(t, a, "F", "q1a")
	approx(t, r.Exprs[q1a].BwdValue(r.Env), 0.70, "q1a backward")
	approx(t, r.Exprs[q1a].FwdValue(r.Env), 0.10, "q1a forward")

	// Closed form should mention both sources.
	eq := r.Equation(vtx(t, a, "F", "g1"))
	if !strings.Contains(eq, "pAVF_R(S1.rd)") || !strings.Contains(eq, "pAVF_R(S2.rd)") {
		t.Fatalf("g1 equation missing terms: %s", eq)
	}
	// Everything in this little design is visited.
	if got := r.VisitedFraction(); got != 1 {
		t.Fatalf("visited fraction = %v, want 1", got)
	}
}

// TestTable1SimplePipe: AVF(all nodes) = MIN(pAVF_R(S1), pAVF_W(S2)).
func TestTable1SimplePipe(t *testing.T) {
	d := netlist.NewDesign("pipe")
	d.AddStructure("S1", 4, 8)
	d.AddStructure("S2", 4, 8)
	m := d.AddModule("m")
	b := netlist.Build(m)
	rd := b.SRead("rd", 8, "S1", "rd")
	last := b.Pipe("q", 8, 3, rd)
	b.SWrite("wr", "S2", "wr", last)
	d.AddFub("F", "m")
	a := mustAnalyze(t, d, DefaultOptions())

	in := NewInputs()
	in.ReadPorts[StructPort{"S1", "rd"}] = 0.4
	in.WritePorts[StructPort{"S2", "wr"}] = 0.25
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"q_1", "q_2", "q_3"} {
		v := vtx(t, a, "F", node)
		for b := graph.VertexID(0); b < 8; b++ {
			approx(t, r.AVF[v+b], 0.25, node) // MIN(0.4, 0.25)
		}
	}
	// Flip the relation: now the read port is the tighter bound.
	in.ReadPorts[StructPort{"S1", "rd"}] = 0.1
	if err := r.Reevaluate(in); err != nil {
		t.Fatal(err)
	}
	approx(t, r.AVF[vtx(t, a, "F", "q_2")], 0.1, "q_2 after reeval")
}

// TestTable1LogicalJoin reproduces the join row of Table 1.
func TestTable1LogicalJoin(t *testing.T) {
	d := netlist.NewDesign("join")
	d.AddStructure("S1", 4, 1)
	d.AddStructure("S2", 4, 1)
	d.AddStructure("S3", 4, 1)
	m := d.AddModule("m")
	b := netlist.Build(m)
	q1a := b.Seq("q1a", 1, b.SRead("s1_rd", 1, "S1", "rd"))
	q1b := b.Seq("q1b", 1, b.SRead("s2_rd", 1, "S2", "rd"))
	g := b.C("g", 1, netlist.OpAnd, q1a, q1b)
	q2a := b.Seq("q2a", 1, g)
	b.SWrite("s3_wr", "S3", "wr", q2a)
	d.AddFub("F", "m")
	a := mustAnalyze(t, d, DefaultOptions())

	in := NewInputs()
	in.ReadPorts[StructPort{"S1", "rd"}] = 0.10
	in.ReadPorts[StructPort{"S2", "rd"}] = 0.07
	in.WritePorts[StructPort{"S3", "wr"}] = 0.12
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.AVF[vtx(t, a, "F", "q1a")], 0.10, "q1a") // MIN(0.10, 0.12)
	approx(t, r.AVF[vtx(t, a, "F", "q1b")], 0.07, "q1b") // MIN(0.07, 0.12)
	approx(t, r.AVF[vtx(t, a, "F", "q2a")], 0.12, "q2a") // MIN(0.17, 0.12)
}

// TestTable1DistributionSplit reproduces the split row of Table 1.
func TestTable1DistributionSplit(t *testing.T) {
	d := netlist.NewDesign("split")
	d.AddStructure("S1", 4, 1)
	d.AddStructure("S2", 4, 1)
	d.AddStructure("S3", 4, 1)
	m := d.AddModule("m")
	b := netlist.Build(m)
	q1a := b.Seq("q1a", 1, b.SRead("s1_rd", 1, "S1", "rd"))
	q2a := b.Seq("q2a", 1, q1a)
	q2b := b.Seq("q2b", 1, q1a)
	b.SWrite("s2_wr", "S2", "wr", q2a)
	b.SWrite("s3_wr", "S3", "wr", q2b)
	d.AddFub("F", "m")
	a := mustAnalyze(t, d, DefaultOptions())

	in := NewInputs()
	in.ReadPorts[StructPort{"S1", "rd"}] = 0.30
	in.WritePorts[StructPort{"S2", "wr"}] = 0.05
	in.WritePorts[StructPort{"S3", "wr"}] = 0.08
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.AVF[vtx(t, a, "F", "q2a")], 0.05, "q2a") // MIN(0.30, 0.05)
	approx(t, r.AVF[vtx(t, a, "F", "q2b")], 0.08, "q2b") // MIN(0.30, 0.08)
	approx(t, r.AVF[vtx(t, a, "F", "q1a")], 0.13, "q1a") // MIN(0.30, 0.05+0.08)
}

// loopFixture: a counter loop feeding a pipeline into a write port.
func loopFixture(t *testing.T, loopPAVF float64) (*Analyzer, *Inputs) {
	t.Helper()
	d := netlist.NewDesign("loopy")
	d.AddStructure("S", 4, 8)
	m := d.AddModule("m")
	b := netlist.Build(m)
	one := b.Const("one", 8, 1)
	b.Seq("count", 8, "cnt_next")
	b.C("cnt_next", 8, netlist.OpAdd, "count", one)
	q := b.Seq("q", 8, "count")
	b.SWrite("wr", "S", "wr", q)
	d.AddFub("F", "m")
	opts := DefaultOptions()
	opts.LoopPAVF = loopPAVF
	a := mustAnalyze(t, d, opts)
	in := NewInputs()
	in.WritePorts[StructPort{"S", "wr"}] = 0.9
	return a, in
}

func TestLoopBoundaryInjection(t *testing.T) {
	a, in := loopFixture(t, 0.3)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	count := vtx(t, a, "F", "count")
	if a.Role(count) != RoleLoop {
		t.Fatalf("count role = %v", a.Role(count))
	}
	approx(t, r.AVF[count], 0.3, "loop node AVF")
	// The loop value ripples into the downstream pipeline: q's forward
	// estimate is the loop pAVF; backward is the write port (0.9).
	q := vtx(t, a, "F", "q")
	approx(t, r.AVF[q], 0.3, "downstream of loop")

	// Sweeping the loop pAVF changes both.
	a2, in2 := loopFixture(t, 0.7)
	r2, err := a2.Solve(in2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r2.AVF[vtx(t, a2, "F", "q")], 0.7, "downstream at 0.7")
	if a.NumLoopTerms() != 1 {
		t.Fatalf("loop terms = %d, want 1", a.NumLoopTerms())
	}
}

func TestControlRegisterDetection(t *testing.T) {
	d := netlist.NewDesign("ctrl")
	d.AddStructure("S", 4, 8)
	m := d.AddModule("m")
	b := netlist.Build(m)
	rd := b.SRead("rd", 8, "S", "rd")
	// Three detection paths: explicit class, name prefix, clock.
	b.CtrlReg("mode", 8, rd, 0) // class=ctrl (+cfgclk)
	b.Seq("cfg_thresh", 8, rd)  // name prefix
	ck := b.M.Add(&netlist.Node{Name: "slowreg", Kind: netlist.KindSeq, Width: 8,
		Inputs: []string{rd}, Clock: "cfgclk"})
	_ = ck
	plain := b.Seq("plain", 8, rd)
	b.SWrite("wr", "S", "wr", plain)
	// Use the control regs so they are not dangling.
	x := b.C("x", 8, netlist.OpAnd, "mode", "cfg_thresh")
	y := b.C("y", 8, netlist.OpAnd, x, "slowreg")
	q := b.Seq("q", 8, y)
	b.SWrite("wr2", "S", "wr2", q)
	d.AddFub("F", "m")
	a := mustAnalyze(t, d, DefaultOptions())

	for _, node := range []string{"mode", "cfg_thresh", "slowreg"} {
		v := vtx(t, a, "F", node)
		if a.Role(v) != RoleControl {
			t.Errorf("%s role = %v, want control", node, a.Role(v))
		}
	}
	if v := vtx(t, a, "F", "plain"); a.Role(v) != RoleNormal {
		t.Errorf("plain role = %v", a.Role(v))
	}

	in := NewInputs()
	in.ReadPorts[StructPort{"S", "rd"}] = 0.2
	in.WritePorts[StructPort{"S", "wr"}] = 0.15
	in.WritePorts[StructPort{"S", "wr2"}] = 0.4
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Control registers themselves are 100% AVF.
	approx(t, r.AVF[vtx(t, a, "F", "mode")], 1.0, "ctrl reg AVF")
	// Logic fed by control regs: forward saturates to 1.0 through the
	// ctrl term; backward bound from wr2 applies.
	approx(t, r.AVF[vtx(t, a, "F", "q")], 0.4, "q")
	// rd is an ACE-measured port: per §4.2, measured values override
	// propagated estimates, so its AVF is its own pAVF_R.
	approx(t, r.AVF[vtx(t, a, "F", "rd")], 0.2, "rd uses measured port value")
	// 'plain' sits between the read port (0.2 forward) and wr (0.15
	// backward): MIN applies.
	approx(t, r.AVF[vtx(t, a, "F", "plain")], 0.15, "plain")
}

func TestDebugLogicStripped(t *testing.T) {
	d := netlist.NewDesign("dfx")
	d.AddStructure("S", 4, 4)
	m := d.AddModule("m")
	b := netlist.Build(m)
	rd := b.SRead("rd", 4, "S", "rd")
	q := b.Seq("q", 4, rd)
	b.SWrite("wr", "S", "wr", q)
	dbg := b.M.Add(&netlist.Node{Name: "dbg_snoop", Kind: netlist.KindSeq, Width: 4,
		Inputs: []string{q}, Class: netlist.ClassDebug})
	_ = dbg
	d.AddFub("F", "m")
	a := mustAnalyze(t, d, DefaultOptions())
	in := NewInputs()
	in.ReadPorts[StructPort{"S", "rd"}] = 0.5
	in.WritePorts[StructPort{"S", "wr"}] = 0.5
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	v := vtx(t, a, "F", "dbg_snoop")
	if a.Role(v) != RoleDebug {
		t.Fatalf("role = %v", a.Role(v))
	}
	if r.AVF[v] != 0 {
		t.Fatalf("debug AVF = %v, want 0", r.AVF[v])
	}
	// Debug nodes do not drag q's backward estimate up: q feeds wr (0.5)
	// and the debug node (0) -> bwd = 0.5.
	approx(t, r.AVF[vtx(t, a, "F", "q")], 0.5, "q")
	// Debug bits are excluded from statistics.
	sum := r.Summarize()
	if sum.SeqBits != 4 { // only q
		t.Fatalf("SeqBits = %d, want 4", sum.SeqBits)
	}
}

func TestBoundaryPseudoStructures(t *testing.T) {
	d := netlist.NewDesign("bnd")
	m := d.AddModule("m")
	b := netlist.Build(m)
	in := b.In("ext_in", 4)
	q := b.Seq("q", 4, in)
	b.Out("ext_out", 4, q)
	d.AddFub("F", "m")
	opts := DefaultOptions()
	opts.PseudoPAVF = 0.25
	a := mustAnalyze(t, d, opts)
	r, err := a.Solve(NewInputs())
	if err != nil {
		t.Fatal(err)
	}
	// q: forward from the input pseudo-structure (0.25), backward from
	// the output pseudo-structure (0.25).
	approx(t, r.AVF[vtx(t, a, "F", "q")], 0.25, "q")
	v := vtx(t, a, "F", "ext_in")
	if a.Role(v) != RolePseudoIn {
		t.Fatalf("ext_in role = %v", a.Role(v))
	}
}

// multiFubDesign builds a 4-FUB chain with a join, a split, a loop and a
// control register to exercise the partitioned solver.
func multiFubDesign(t *testing.T) (*Analyzer, *Inputs) {
	t.Helper()
	d := netlist.NewDesign("multi")
	d.AddStructure("IN1", 8, 8)
	d.AddStructure("IN2", 8, 8)
	d.AddStructure("MID", 8, 8)
	d.AddStructure("OUT", 8, 8)

	src := d.AddModule("src")
	sb := netlist.Build(src)
	r1 := sb.SRead("rd1", 8, "IN1", "rd")
	r2 := sb.SRead("rd2", 8, "IN2", "rd")
	sb.Out("o1", 8, sb.Pipe("p1", 8, 2, r1))
	sb.Out("o2", 8, sb.Pipe("p2", 8, 3, r2))

	mixm := d.AddModule("mix")
	mb := netlist.Build(mixm)
	a1 := mb.In("a", 8)
	a2 := mb.In("b", 8)
	j := mb.C("j", 8, netlist.OpXor, a1, a2)
	mb.Out("o", 8, mb.Seq("jr", 8, j))
	mb.SWrite("mid_wr", "MID", "wr", "jr")

	loopm := d.AddModule("loopfub")
	lb := netlist.Build(loopm)
	li := lb.In("x", 8)
	one := lb.Const("one", 8, 1)
	lb.Seq("acc", 8, "acc_next")
	lb.C("acc_next", 8, netlist.OpAdd, "acc", one)
	mix2 := lb.C("mix2", 8, netlist.OpXor, li, "acc")
	lb.CtrlReg("cfg_gate", 8, "cfg_gate", 0)
	gated := lb.C("gated", 8, netlist.OpAnd, mix2, "cfg_gate")
	lb.Out("y", 8, lb.Seq("yr", 8, gated))

	sink := d.AddModule("sink")
	kb := netlist.Build(sink)
	ki := kb.In("z", 8)
	kb.SWrite("out_wr", "OUT", "wr", kb.Pipe("kp", 8, 2, ki))

	d.AddFub("SRC", "src")
	d.AddFub("MIX", "mix")
	d.AddFub("LOOP", "loopfub")
	d.AddFub("SINK", "sink")
	d.ConnectPorts("SRC", "o1", "MIX", "a")
	d.ConnectPorts("SRC", "o2", "MIX", "b")
	d.ConnectPorts("MIX", "o", "LOOP", "x")
	d.ConnectPorts("LOOP", "y", "SINK", "z")

	a := mustAnalyze(t, d, DefaultOptions())
	in := NewInputs()
	in.ReadPorts[StructPort{"IN1", "rd"}] = 0.12
	in.ReadPorts[StructPort{"IN2", "rd"}] = 0.05
	in.WritePorts[StructPort{"MID", "wr"}] = 0.14
	in.WritePorts[StructPort{"OUT", "wr"}] = 0.09
	return a, in
}

// TestPartitionedMatchesMonolithic is invariant E4 / §5.2: the relaxation
// converges to the monolithic fixpoint.
func TestPartitionedMatchesMonolithic(t *testing.T) {
	a, in := multiFubDesign(t)
	mono, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	part, err := a.SolvePartitioned(in)
	if err != nil {
		t.Fatalf("SolvePartitioned: %v", err)
	}
	if !part.Converged {
		t.Fatalf("relaxation did not converge in %d iterations", part.Iterations)
	}
	if d := MaxAbsDiff(mono, part); d > 1e-9 {
		t.Fatalf("partitioned deviates from monolithic by %v", d)
	}
	if len(part.Trace) == 0 || len(part.Trace[0]) != 4 {
		t.Fatalf("trace malformed: %v", part.Trace)
	}
	// Values must cross one partition per iteration: with a 4-FUB chain,
	// convergence needs more than one iteration.
	if part.Iterations < 2 {
		t.Fatalf("iterations = %d, expected multi-iteration relaxation", part.Iterations)
	}
}

// TestConvergenceTraceMonotone: per-FUB averages never increase across
// iterations (values only refine downward from the conservative start).
func TestConvergenceTraceMonotone(t *testing.T) {
	a, in := multiFubDesign(t)
	part, err := a.SolvePartitioned(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(part.Trace); i++ {
		for f := range part.Trace[i] {
			if part.Trace[i][f] > part.Trace[i-1][f]+1e-12 {
				t.Fatalf("iteration %d FUB %d average rose: %v -> %v",
					i, f, part.Trace[i-1][f], part.Trace[i][f])
			}
		}
	}
}

// TestConservatismInvariants: final AVFs are within [0,1] and never exceed
// either one-sided estimate.
func TestConservatismInvariants(t *testing.T) {
	a, in := multiFubDesign(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.G.NumVerts(); v++ {
		avf := r.AVF[v]
		if avf < 0 || avf > 1 {
			t.Fatalf("%s AVF out of range: %v", a.G.Name(graph.VertexID(v)), avf)
		}
		x := r.Exprs[v]
		if avf > x.FwdValue(r.Env)+1e-12 || avf > x.BwdValue(r.Env)+1e-12 {
			t.Fatalf("%s AVF exceeds an estimate", a.G.Name(graph.VertexID(v)))
		}
	}
}

// TestMonotonicityInInputs: raising a port pAVF never lowers any node AVF.
func TestMonotonicityInInputs(t *testing.T) {
	a, in := multiFubDesign(t)
	r1, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), r1.AVF...)
	in2 := NewInputs()
	for k, v := range in.ReadPorts {
		in2.ReadPorts[k] = v
	}
	for k, v := range in.WritePorts {
		in2.WritePorts[k] = v
	}
	in2.ReadPorts[StructPort{"IN1", "rd"}] = 0.5 // raised from 0.12
	if err := r1.Reevaluate(in2); err != nil {
		t.Fatal(err)
	}
	for v := range before {
		if r1.AVF[v] < before[v]-1e-12 {
			t.Fatalf("raising input lowered AVF at %s: %v -> %v",
				a.G.Name(graph.VertexID(v)), before[v], r1.AVF[v])
		}
	}
}

// TestSymbolicReevalMatchesFreshSolve: E8 — the closed forms evaluated
// under new inputs equal a from-scratch solve.
func TestSymbolicReevalMatchesFreshSolve(t *testing.T) {
	a, in := multiFubDesign(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := NewInputs()
	in2.ReadPorts[StructPort{"IN1", "rd"}] = 0.33
	in2.ReadPorts[StructPort{"IN2", "rd"}] = 0.21
	in2.WritePorts[StructPort{"MID", "wr"}] = 0.05
	in2.WritePorts[StructPort{"OUT", "wr"}] = 0.44
	if err := r.Reevaluate(in2); err != nil {
		t.Fatal(err)
	}
	fresh, err := a.Solve(in2)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(r, fresh); d > 1e-12 {
		t.Fatalf("closed-form reevaluation deviates by %v", d)
	}
}

func TestMissingPortPAVFFails(t *testing.T) {
	a, _ := multiFubDesign(t)
	_, err := a.Solve(NewInputs())
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("want missing-port error, got %v", err)
	}
}

func TestDefaultPortPAVF(t *testing.T) {
	d := netlist.NewDesign("dflt")
	d.AddStructure("S", 4, 4)
	m := d.AddModule("m")
	b := netlist.Build(m)
	q := b.Seq("q", 4, b.SRead("rd", 4, "S", "rd"))
	b.SWrite("wr", "S", "wr", q)
	d.AddFub("F", "m")
	opts := DefaultOptions()
	opts.DefaultPortPAVF = 0.5
	a := mustAnalyze(t, d, opts)
	r, err := a.Solve(NewInputs())
	if err != nil {
		t.Fatalf("Solve with defaults: %v", err)
	}
	approx(t, r.AVF[vtx(t, a, "F", "q")], 0.5, "q with default port pAVF")
}

func TestOptionsValidation(t *testing.T) {
	d := netlist.NewDesign("v")
	m := d.AddModule("m")
	b := netlist.Build(m)
	b.Out("o", 1, b.Seq("r", 1, b.In("i", 1)))
	d.AddFub("F", "m")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	fd, _ := netlist.Flatten(d)
	g, _ := graph.Build(fd)
	bad := DefaultOptions()
	bad.LoopPAVF = 1.5
	if _, err := NewAnalyzer(g, bad); err == nil {
		t.Fatal("accepted LoopPAVF > 1")
	}
	bad = DefaultOptions()
	bad.PseudoPAVF = -0.1
	if _, err := NewAnalyzer(g, bad); err == nil {
		t.Fatal("accepted PseudoPAVF < 0")
	}
}

func TestSummaryAndFubStats(t *testing.T) {
	a, in := multiFubDesign(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summarize()
	if s.SeqBits == 0 || s.NodeBits <= s.SeqBits {
		t.Fatalf("bad bit counts: %+v", s)
	}
	if s.LoopSeqBits != 8 { // acc
		t.Fatalf("LoopSeqBits = %d, want 8", s.LoopSeqBits)
	}
	if s.CtrlBits != 8 { // cfg_gate
		t.Fatalf("CtrlBits = %d, want 8", s.CtrlBits)
	}
	if s.WeightedSeqAVF <= 0 || s.WeightedSeqAVF > 1 {
		t.Fatalf("WeightedSeqAVF = %v", s.WeightedSeqAVF)
	}
	if s.VisitedFraction < 0.9 {
		t.Fatalf("VisitedFraction = %v", s.VisitedFraction)
	}
	stats := r.FubStats()
	if len(stats) != 4 {
		t.Fatalf("FubStats len = %d", len(stats))
	}
	byNode := r.SeqAVFByNode()
	if _, ok := byNode["LOOP/acc"]; !ok {
		t.Fatalf("SeqAVFByNode missing LOOP/acc: %v", byNode)
	}
	approx(t, byNode["LOOP/acc"], 0.3, "loop node avg")
}

func TestParallelPartitionedMatchesSerial(t *testing.T) {
	a, in := multiFubDesign(t)
	serial, err := a.SolvePartitioned(in)
	if err != nil {
		t.Fatal(err)
	}
	opts := a.Opts
	opts.Workers = 4
	ap, err := NewAnalyzer(a.G, opts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ap.SolvePartitioned(in)
	if err != nil {
		t.Fatal(err)
	}
	if !parallel.Converged {
		t.Fatal("parallel run did not converge")
	}
	if d := MaxAbsDiff(serial, parallel); d > 1e-12 {
		t.Fatalf("parallel deviates from serial by %v", d)
	}
	if parallel.Iterations != serial.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", parallel.Iterations, serial.Iterations)
	}
}

func TestLoopOverrides(t *testing.T) {
	a, in := loopFixture(t, 0.3)
	// Find the loop term name.
	count := vtx(t, a, "F", "count")
	if a.Role(count) != RoleLoop {
		t.Fatal("fixture changed")
	}
	opts := a.Opts
	opts.LoopOverrides = map[string]float64{"F/count": 0.85}
	ao, err := NewAnalyzer(a.G, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ao.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.AVF[vtx(t, ao, "F", "count")], 0.85, "override applied")
	// Downstream nodes see the override through the walk.
	approx(t, r.AVF[vtx(t, ao, "F", "q")], 0.85, "override propagates")
	// Unknown keys fall back to LoopPAVF; out-of-range values clamp.
	opts.LoopOverrides = map[string]float64{"F/other": 0.9, "F/count": 1.7}
	ao2, err := NewAnalyzer(a.G, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ao2.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r2.AVF[vtx(t, ao2, "F", "count")], 1.0, "clamped override")
}

func TestExportJSON(t *testing.T) {
	a, in := multiFubDesign(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	ex := r.Export(true)
	if ex.Design == "" || ex.SeqBits == 0 || len(ex.Fubs) != 4 || len(ex.Nodes) == 0 {
		t.Fatalf("export incomplete: %+v", ex)
	}
	for _, n := range ex.Nodes {
		if n.AVF < 0 || n.AVF > 1 {
			t.Fatalf("%s exported AVF %v", n.Node, n.AVF)
		}
		if math.Abs(n.SDC+n.DUE+n.DCE-n.AVF) > 1e-9 {
			t.Fatalf("%s components do not sum: %+v", n.Node, n)
		}
		if n.Equation == "" {
			t.Fatalf("%s missing equation", n.Node)
		}
	}
	// Without equations the field is omitted.
	ex2 := r.Export(false)
	if ex2.Nodes[0].Equation != "" {
		t.Fatal("equation present without request")
	}
}

func TestPseudoOverrides(t *testing.T) {
	d := netlist.NewDesign("bnd2")
	m := d.AddModule("m")
	b := netlist.Build(m)
	inA := b.In("ext_a", 4)
	inB := b.In("ext_b", 4)
	qa := b.Seq("qa", 4, inA)
	qb := b.Seq("qb", 4, inB)
	b.Out("oa", 4, qa)
	b.Out("ob", 4, qb)
	d.AddFub("F", "m")
	opts := DefaultOptions()
	opts.PseudoPAVF = 0.5
	opts.PseudoOverrides = map[string]float64{
		"EXT:F.ext_a": 0.05, // a quiet external interface
		"EXT:F.ob":    0.10, // a lightly consumed output
	}
	a := mustAnalyze(t, d, opts)
	r, err := a.Solve(NewInputs())
	if err != nil {
		t.Fatal(err)
	}
	// qa: fwd 0.05 (override), bwd 0.5 (default) -> 0.05.
	approx(t, r.AVF[vtx(t, a, "F", "qa")], 0.05, "qa")
	// qb: fwd 0.5 (default), bwd 0.10 (override) -> 0.10.
	approx(t, r.AVF[vtx(t, a, "F", "qb")], 0.10, "qb")
}

// TestSolveObservability runs both solvers with a wired obs.Registry and
// asserts the expected phase spans and non-zero walk counters land in the
// snapshot — the contract the CLIs' -metrics/-trace flags rely on.
func TestSolveObservability(t *testing.T) {
	a, in := multiFubDesign(t)
	reg := obs.New()
	opts := a.Opts
	opts.Obs = reg
	a2, err := NewAnalyzer(a.G, opts)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	if _, err := a2.Solve(in); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	part, err := a2.SolvePartitioned(in)
	if err != nil {
		t.Fatalf("SolvePartitioned: %v", err)
	}

	snap := reg.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("root spans = %d, want 2 (solve + solve_partitioned)", len(snap.Spans))
	}
	phases := func(s []obs.SpanSnapshot) map[string]int {
		out := make(map[string]int)
		for _, c := range s {
			out[c.Name]++
		}
		return out
	}
	mono := snap.Spans[0]
	if mono.Name != "solve" {
		t.Fatalf("first root = %q, want solve", mono.Name)
	}
	mp := phases(mono.Children)
	for _, want := range []string{"env", "fwd", "bwd", "finish"} {
		if mp[want] != 1 {
			t.Fatalf("solve phases = %v, missing %q", mp, want)
		}
	}
	partSpan := snap.Spans[1]
	if partSpan.Name != "solve_partitioned" {
		t.Fatalf("second root = %q, want solve_partitioned", partSpan.Name)
	}
	pp := phases(partSpan.Children)
	if pp["iteration"] != part.Iterations {
		t.Fatalf("iteration spans = %d, want %d", pp["iteration"], part.Iterations)
	}
	if pp["env"] != 1 || pp["finish"] != 1 {
		t.Fatalf("partitioned phases = %v", pp)
	}
	// Convergence trace folded into iteration span attributes.
	var sawTrace bool
	for _, c := range partSpan.Children {
		if c.Name == "iteration" {
			if _, ok := c.Attrs["max_delta"]; !ok {
				t.Fatalf("iteration span missing max_delta: %v", c.Attrs)
			}
			if _, ok := c.Attrs["fub_avg_pavf"]; ok {
				sawTrace = true
			}
		}
	}
	if !sawTrace {
		t.Fatal("no iteration span carries fub_avg_pavf")
	}

	for _, name := range []string{
		"core.fwd_vertices", "core.bwd_vertices", "core.union_ops", "core.iterations",
	} {
		if snap.Counters[name] <= 0 {
			t.Fatalf("counter %s = %d, want > 0 (all: %v)", name, snap.Counters[name], snap.Counters)
		}
	}
	if snap.Counters["core.solves"] != 2 {
		t.Fatalf("core.solves = %d, want 2", snap.Counters["core.solves"])
	}
	if h := snap.Histograms["core.iter_delta"]; h.Count != uint64(part.Iterations) {
		t.Fatalf("iter_delta observations = %d, want %d", h.Count, part.Iterations)
	}
}

// TestMaxAbsDiffMismatched is the guard against comparing results of
// differing vertex counts: NaN, not a panic.
func TestMaxAbsDiffMismatched(t *testing.T) {
	a, in := multiFubDesign(t)
	r1, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	b, in2 := figure7(t)
	r2, err := b.Solve(in2)
	if err != nil {
		t.Fatalf("Solve fig7: %v", err)
	}
	if d := MaxAbsDiff(r1, r2); !math.IsNaN(d) {
		t.Fatalf("MaxAbsDiff over mismatched results = %v, want NaN", d)
	}
	if d := MaxAbsDiff(r1, r1); d != 0 {
		t.Fatalf("self diff = %v, want 0", d)
	}
}

// TestReevaluateRejectsForeignInputs: re-evaluating closed forms against
// inputs from a different design must fail loudly, not silently default
// the stray ports.
func TestReevaluateRejectsForeignInputs(t *testing.T) {
	a, in := multiFubDesign(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	_, fig7In := figure7(t)
	err = r.Reevaluate(fig7In)
	if err == nil {
		t.Fatal("Reevaluate accepted inputs for a different design")
	}
	if !strings.Contains(err.Error(), "S1") {
		t.Fatalf("error does not name a stray port: %v", err)
	}
	// The result is untouched by the rejected call and keeps working.
	if err := r.Reevaluate(in); err != nil {
		t.Fatalf("Reevaluate after rejection: %v", err)
	}
}

// TestReevaluateRejectsMismatchedResult: a Result whose equation vector
// no longer matches its analyzer's design (e.g. assembled by hand or
// retargeted at another analyzer) must be refused.
func TestReevaluateRejectsMismatchedResult(t *testing.T) {
	a, in := multiFubDesign(t)
	b, fig7In := figure7(t)
	r2, err := b.Solve(fig7In)
	if err != nil {
		t.Fatalf("Solve fig7: %v", err)
	}
	// Retarget fig7's result at the multi-FUB analyzer: vertex counts
	// disagree, so the shape check must fire before any evaluation.
	r2.Analyzer = a
	err = r2.Reevaluate(in)
	if err == nil {
		t.Fatal("Reevaluate accepted a result/analyzer vertex-count mismatch")
	}
	if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
}
