package core

import (
	"fmt"
	"math"
	"sync"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/pavf"
)

// SolvePartitioned runs the paper's operational tool flow (§5.2): the
// design is processed one FUB at a time, each iteration performing one
// down-walk and one up-walk per FUB against the FUBIO boundary values
// merged at the end of the previous iteration. A pAVF value therefore
// crosses at most one partition boundary per iteration, and the process
// repeats until the values reach steady state (the paper found 20
// iterations sufficient) or Opts.Iterations is exhausted.
//
// The converged result equals the monolithic Solve fixpoint; the value of
// this entry point is operational fidelity (bounded per-FUB memory) plus
// the per-iteration convergence trace the paper plots.
func (a *Analyzer) SolvePartitioned(in *Inputs) (*Result, error) {
	reg := a.Opts.Obs
	sp := reg.StartSpan("solve_partitioned")
	defer sp.End()
	esp := sp.Child("env")
	env, err := a.buildEnv(in)
	esp.End()
	if err != nil {
		return nil, err
	}
	n := a.G.NumVerts()
	sp.SetAttr("vertices", n)
	sp.SetAttr("fubs", len(a.G.FubNames))
	tsp := sp.Child("local_topos")
	fwdTopo, bwdTopo, err := a.localTopos()
	tsp.End()
	if err != nil {
		return nil, err
	}

	// Previous-iteration ("merged FUBIO") state and current state.
	fwdPrev := make([]pavf.Set, n)
	fwdPrevKnown := make([]bool, n)
	bwdPrev := make([]pavf.Set, n)
	bwdPrevKnown := make([]bool, n)
	fwdCur := make([]pavf.Set, n)
	bwdCur := make([]pavf.Set, n)
	bwdCurKnown := make([]bool, n)

	prevVal := make([]float64, n)
	for v := range prevVal {
		prevVal[v] = 1
	}

	r := &Result{Analyzer: a, Inputs: in, Env: env}
	numFubs := len(a.G.FubNames)
	var ws walkStats
	var wsMu sync.Mutex
	iter := 0
	for iter = 1; iter <= a.Opts.Iterations; iter++ {
		isp := sp.Child("iteration")
		isp.SetAttr("iter", iter)
		// One down-walk and one up-walk per FUB, Jacobi style: cross-FUB
		// contributions come from the previous iteration's merge. Each
		// FUB touches only its own vertices, so the walks parallelize
		// across FUBs (§5.2: partitioning exists partly "to parallelize
		// the task"); results are identical to the serial schedule. Walk
		// tallies accumulate per worker and merge once per iteration.
		walkFub := func(f int, st *walkStats) {
			for _, v := range fwdTopo[f] {
				fwdCur[v] = a.fwdUnionLocal(v, int32(f), fwdCur, fwdPrev, fwdPrevKnown, st)
			}
			lt := bwdTopo[f]
			for i := len(lt) - 1; i >= 0; i-- {
				v := lt[i]
				bwdCur[v], bwdCurKnown[v] = a.bwdUnionLocal(v, int32(f), bwdCur, bwdCurKnown, bwdPrev, bwdPrevKnown, st)
			}
		}
		if a.Opts.Workers > 1 {
			var wg sync.WaitGroup
			work := make(chan int)
			for w := 0; w < a.Opts.Workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var st walkStats
					for f := range work {
						walkFub(f, &st)
					}
					wsMu.Lock()
					ws.merge(&st)
					wsMu.Unlock()
				}()
			}
			for f := 0; f < numFubs; f++ {
				work <- f
			}
			close(work)
			wg.Wait()
		} else {
			for f := 0; f < numFubs; f++ {
				walkFub(f, &ws)
			}
		}
		// Merge step: publish this iteration's values as the FUBIO tables
		// for the next one, and measure the change for convergence.
		maxDelta := 0.0
		fubSum := make([]float64, numFubs)
		fubCnt := make([]int, numFubs)
		for v := 0; v < n; v++ {
			fwdPrev[v], fwdPrevKnown[v] = fwdCur[v], true
			bwdPrev[v], bwdPrevKnown[v] = bwdCur[v], bwdCurKnown[v]
			val := a.vertexValue(graph.VertexID(v), fwdCur[v], bwdCur[v], bwdCurKnown[v], env)
			if d := math.Abs(val - prevVal[v]); d > maxDelta {
				maxDelta = d
			}
			prevVal[v] = val
			vx := &a.G.Verts[v]
			if vx.Node.Kind == netlist.KindSeq && a.roles[v] != RoleDebug {
				fubSum[vx.Fub] += val
				fubCnt[vx.Fub]++
			}
		}
		avg := make([]float64, numFubs)
		for f := range avg {
			if fubCnt[f] > 0 {
				avg[f] = fubSum[f] / float64(fubCnt[f])
			}
		}
		r.Trace = append(r.Trace, avg)
		// The convergence diagnostic folds into the span: max per-vertex
		// delta plus the per-FUB average sequential pAVFs the paper plots.
		isp.SetAttr("max_delta", maxDelta)
		isp.SetAttr("fub_avg_pavf", avg)
		isp.End()
		reg.Histogram("core.iter_delta").Observe(maxDelta)
		reg.Gauge("core.max_delta").Set(maxDelta)
		if maxDelta <= a.Opts.Epsilon {
			r.Converged = true
			break
		}
	}
	if iter > a.Opts.Iterations {
		iter = a.Opts.Iterations
	}
	nsp := sp.Child("finish")
	fin := a.finish(in, env, fwdCur, bwdCur, bwdCurKnown)
	nsp.End()
	fin.Iterations = iter
	fin.Converged = r.Converged
	fin.Trace = r.Trace
	ws.record(reg)
	reg.Counter("core.iterations").Add(int64(iter))
	reg.Counter("core.solves").Inc()
	sp.SetAttr("iterations", iter)
	sp.SetAttr("converged", fin.Converged)
	return fin, nil
}

// vertexValue resolves a vertex's numeric AVF from in-flight propagation
// state, matching the role handling in finish.
func (a *Analyzer) vertexValue(v graph.VertexID, fwd, bwd pavf.Set, bwdKnown bool, env pavf.Env) float64 {
	switch a.roles[v] {
	case RoleStructPort, RoleLoop:
		return a.fwdSrc[v].Eval(env)
	case RoleControl:
		return 1
	case RoleDebug:
		return 0
	case RoleConst:
		return 1
	}
	f := 1.0
	if a.fwdFixed[v] {
		f = a.fwdSrc[v].Eval(env)
	} else {
		f = fwd.Eval(env)
	}
	b := 1.0
	if a.bwdFixed[v] {
		b = a.bwdSrc[v].Eval(env)
	} else if bwdKnown {
		b = bwd.Eval(env)
	}
	return math.Min(f, b)
}

// fwdUnionLocal is fwdUnion with cross-FUB predecessors read from the
// previous iteration's merged state.
func (a *Analyzer) fwdUnionLocal(v graph.VertexID, fub int32, cur, prev []pavf.Set, prevKnown []bool, st *walkStats) pavf.Set {
	st.fwdVerts++
	var acc pavf.Set
	for _, p := range a.G.Preds(v) {
		var contrib pavf.Set
		switch {
		case a.fwdFixed[p]:
			contrib = a.fwdSrc[p]
		case a.G.Verts[p].Fub == fub:
			contrib = cur[p]
		case prevKnown[p]:
			contrib = prev[p]
		default:
			contrib = pavf.TopSet()
		}
		st.unionOps++
		acc = acc.Union(contrib)
		if acc.HasTop() {
			st.topShorts++
			return acc
		}
	}
	return acc
}

// bwdUnionLocal is bwdUnion with cross-FUB successors read from the
// previous iteration's merged state.
func (a *Analyzer) bwdUnionLocal(v graph.VertexID, fub int32, cur []pavf.Set, curKnown []bool, prev []pavf.Set, prevKnown []bool, st *walkStats) (pavf.Set, bool) {
	st.bwdVerts++
	succs := a.G.Succs(v)
	if len(succs) == 0 {
		return pavf.Set{}, false
	}
	var acc pavf.Set
	for _, s := range succs {
		var contrib pavf.Set
		switch {
		case a.bwdFixed[s]:
			contrib = a.bwdSrc[s]
		case a.G.Verts[s].Fub == fub:
			if !curKnown[s] {
				contrib = pavf.TopSet()
			} else {
				contrib = cur[s]
			}
		case prevKnown[s]:
			contrib = prev[s]
		default:
			contrib = pavf.TopSet()
		}
		st.unionOps++
		acc = acc.Union(contrib)
		if acc.HasTop() {
			st.topShorts++
			return acc, true
		}
	}
	return acc, true
}

// localTopos returns per-FUB topological orders over intra-FUB edges
// only: the schedule for one down-walk (and, reversed, one up-walk) per
// FUB. The schedules are built once per analyzer and shared — callers
// must not mutate the returned slices.
func (a *Analyzer) localTopos() ([][]graph.VertexID, [][]graph.VertexID, error) {
	a.topoOnce.Do(func() {
		a.fwdTopos, a.bwdTopos, a.topoErr = a.buildLocalTopos()
	})
	return a.fwdTopos, a.bwdTopos, a.topoErr
}

func (a *Analyzer) buildLocalTopos() (fwd [][]graph.VertexID, bwd [][]graph.VertexID, err error) {
	numFubs := len(a.G.FubNames)
	fwd = make([][]graph.VertexID, numFubs)
	bwd = make([][]graph.VertexID, numFubs)
	n := a.G.NumVerts()

	order := func(fixed []bool) ([][]graph.VertexID, error) {
		indeg := make([]int32, n)
		for v := 0; v < n; v++ {
			if fixed[v] {
				continue
			}
			for _, p := range a.G.Preds(graph.VertexID(v)) {
				if !fixed[p] && a.G.Verts[p].Fub == a.G.Verts[v].Fub {
					indeg[v]++
				}
			}
		}
		out := make([][]graph.VertexID, numFubs)
		var queue []graph.VertexID
		done := 0
		want := 0
		for v := 0; v < n; v++ {
			if fixed[v] {
				continue
			}
			want++
			if indeg[v] == 0 {
				queue = append(queue, graph.VertexID(v))
			}
		}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			f := a.G.Verts[v].Fub
			out[f] = append(out[f], v)
			done++
			for _, s := range a.G.Succs(v) {
				if fixed[s] || a.G.Verts[s].Fub != f {
					continue
				}
				indeg[s]--
				if indeg[s] == 0 {
					queue = append(queue, s)
				}
			}
		}
		if done != want {
			return nil, fmt.Errorf("core: intra-FUB cycle remains (%d of %d ordered)", done, want)
		}
		return out, nil
	}
	if fwd, err = order(a.fwdFixed); err != nil {
		return nil, nil, err
	}
	if bwd, err = order(a.bwdFixed); err != nil {
		return nil, nil, err
	}
	return fwd, bwd, nil
}
