package core

import (
	"math"
	"testing"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
)

// protFixture: one read port feeding a split into three write ports with
// different protections.
func protFixture(t *testing.T) (*Analyzer, *Inputs) {
	t.Helper()
	d := netlist.NewDesign("prot")
	d.AddStructure("SRC", 4, 8)
	d.AddStructure("PLAIN", 4, 8)
	d.AddStructure("PAR", 4, 8).Prot = netlist.ProtParity
	d.AddStructure("ECC", 4, 8).Prot = netlist.ProtECC
	m := d.AddModule("m")
	b := netlist.Build(m)
	rd := b.SRead("rd", 8, "SRC", "r")
	q := b.Seq("q", 8, rd)
	q1 := b.Seq("q1", 8, q)
	q2 := b.Seq("q2", 8, q)
	q3 := b.Seq("q3", 8, q)
	b.SWrite("w1", "PLAIN", "w", q1)
	b.SWrite("w2", "PAR", "w", q2)
	b.SWrite("w3", "ECC", "w", q3)
	d.AddFub("F", "m")
	a := mustAnalyze(t, d, DefaultOptions())
	in := NewInputs()
	in.ReadPorts[StructPort{"SRC", "r"}] = 0.9
	in.WritePorts[StructPort{"PLAIN", "w"}] = 0.10
	in.WritePorts[StructPort{"PAR", "w"}] = 0.20
	in.WritePorts[StructPort{"ECC", "w"}] = 0.10
	return a, in
}

func TestDecomposeSplitsByDestination(t *testing.T) {
	a, in := protFixture(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// q's backward set is the union of all three writes: 0.4 total, of
	// which 0.10 plain (SDC), 0.20 parity (DUE), 0.10 ecc (DCE).
	// AVF(q) = min(0.9, 0.4) = 0.4.
	q := vtx(t, a, "F", "q")
	d := r.Decompose(q)
	approx(t, d.Total(), 0.4, "q total")
	approx(t, d.SDC, 0.4*0.25, "q SDC")
	approx(t, d.DUE, 0.4*0.50, "q DUE")
	approx(t, d.DCE, 0.4*0.25, "q DCE")

	// Single-destination nodes classify entirely.
	d1 := r.Decompose(vtx(t, a, "F", "q1"))
	approx(t, d1.SDC, d1.Total(), "q1 all SDC")
	d2 := r.Decompose(vtx(t, a, "F", "q2"))
	approx(t, d2.DUE, d2.Total(), "q2 all DUE")
	approx(t, d2.Total(), 0.2, "q2 total")
	d3 := r.Decompose(vtx(t, a, "F", "q3"))
	approx(t, d3.DCE, d3.Total(), "q3 all DCE")

	// Convenience accessors agree.
	approx(t, r.SDCAVF(q), d.SDC, "SDCAVF")
	approx(t, r.DUEAVF(q), d.DUE, "DUEAVF")
}

func TestDecomposeComponentsSumToAVF(t *testing.T) {
	a, in := protFixture(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.G.NumVerts(); v++ {
		d := r.Decompose(graph.VertexID(v))
		if math.Abs(d.Total()-r.AVF[v]) > 1e-9 {
			t.Fatalf("%s: components sum to %v, AVF %v",
				a.G.Name(graph.VertexID(v)), d.Total(), r.AVF[v])
		}
		if d.SDC < 0 || d.DUE < 0 || d.DCE < 0 {
			t.Fatalf("%s: negative component %+v", a.G.Name(graph.VertexID(v)), d)
		}
	}
}

func TestDecomposeUnknownDestinationIsSDC(t *testing.T) {
	// A node feeding only a dangling path: backward unknown -> SDC.
	d := netlist.NewDesign("dangle")
	d.AddStructure("SRC", 4, 8)
	m := d.AddModule("m")
	b := netlist.Build(m)
	rd := b.SRead("rd", 8, "SRC", "r")
	b.Seq("q", 8, rd) // q has no consumers
	d.AddFub("F", "m")
	a := mustAnalyze(t, d, DefaultOptions())
	in := NewInputs()
	in.ReadPorts[StructPort{"SRC", "r"}] = 0.3
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	dec := r.Decompose(vtx(t, a, "F", "q"))
	approx(t, dec.SDC, 0.3, "dangling SDC")
	approx(t, dec.DUE+dec.DCE, 0, "dangling detected")
}

func TestDecomposeReadPortSinkIsSDC(t *testing.T) {
	// Address bits feeding a protected structure's READ port stay SDC:
	// a corrupted address fetches a wrong-but-valid codeword.
	d := netlist.NewDesign("addr")
	d.AddStructure("SRC", 4, 4)
	d.AddStructure("TAB", 16, 8).Prot = netlist.ProtParity
	d.AddStructure("OUT", 4, 8)
	m := d.AddModule("m")
	b := netlist.Build(m)
	idx := b.Seq("idx", 4, b.SRead("rd", 4, "SRC", "r"))
	data := b.SRead("tab_rd", 8, "TAB", "r", idx)
	b.SWrite("out_wr", "OUT", "w", b.Seq("q", 8, data))
	d.AddFub("F", "m")
	a := mustAnalyze(t, d, DefaultOptions())
	in := NewInputs()
	in.ReadPorts[StructPort{"SRC", "r"}] = 0.5
	in.ReadPorts[StructPort{"TAB", "r"}] = 0.4
	in.WritePorts[StructPort{"OUT", "w"}] = 0.3
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	dec := r.Decompose(vtx(t, a, "F", "idx"))
	if dec.DUE != 0 || dec.DCE != 0 {
		t.Fatalf("address path classified as detected: %+v", dec)
	}
	if dec.SDC <= 0 {
		t.Fatal("address path has zero AVF")
	}
}

func TestSeqDecomposition(t *testing.T) {
	a, in := protFixture(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	d := r.SeqDecomposition()
	if d.Total() <= 0 {
		t.Fatal("empty decomposition")
	}
	if d.DUE <= 0 || d.DCE <= 0 {
		t.Fatalf("protected destinations not reflected: %+v", d)
	}
	// Sanity: average decomposition total matches unweighted average AVF
	// over sequential bits.
	var sum float64
	n := 0
	for v := 0; v < a.G.NumVerts(); v++ {
		if r.IsSequentialBit(graph.VertexID(v)) {
			sum += r.AVF[v]
			n++
		}
	}
	approx(t, d.Total(), sum/float64(n), "decomposition vs average AVF")
}

func TestContributors(t *testing.T) {
	a, in := protFixture(t)
	r, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	fwd, bwd := r.Contributors(vtx(t, a, "F", "q"))
	if len(fwd) != 1 || fwd[0].Term != "pAVF_R(SRC.r)" {
		t.Fatalf("fwd contributors = %+v", fwd)
	}
	if len(bwd) != 3 {
		t.Fatalf("bwd contributors = %+v", bwd)
	}
	// Sorted by descending value: PAR (0.20) first.
	if bwd[0].Term != "pAVF_W(PAR.w)" || bwd[0].Value != 0.20 {
		t.Fatalf("bwd[0] = %+v", bwd[0])
	}
	for i := 1; i < len(bwd); i++ {
		if bwd[i].Value > bwd[i-1].Value {
			t.Fatal("contributors not sorted")
		}
	}
}
