package core

import (
	"sort"
	"strings"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/pavf"
)

// This file decomposes each node's AVF into SDC / DUE / DCE components
// (§1 of the paper distinguishes silent data corruption, detected
// uncorrectable, and detected corrected errors; §3.1 notes SDC and DUE
// have different observability points — SFI needs separate campaigns for
// them, while the analytical flow resolves both from one pass).
//
// The model follows end-to-end protection (the paper's refs [10][11]):
// when a structure is declared parity- or ECC-protected, its incoming
// data is covered by the code from the producer, so the fraction of a
// node's outgoing ACE traffic that sinks into protected write ports is
// detected (parity -> DUE) or corrected (ECC -> DCE). The backward term
// set of the node's closed form records exactly that composition, so the
// decomposition is a weighted split of the resolved AVF:
//
//	p_class = Σ value(term in class) / Σ value(all backward terms)
//
// Traffic with unknown destination (⊤, pseudo-structures, loop
// boundaries) and structure *read*-port sinks (a corrupted read address
// fetches a wrong-but-valid codeword, which no code detects) classify as
// SDC — the conservative direction.

// AVFClass is a fault-outcome class.
type AVFClass uint8

const (
	// ClassSDC faults silently corrupt user-visible results.
	ClassSDC AVFClass = iota
	// ClassDUE faults are detected but not correctable.
	ClassDUE
	// ClassDCE faults are detected and corrected (no user impact).
	ClassDCE
)

func (c AVFClass) String() string {
	switch c {
	case ClassSDC:
		return "SDC"
	case ClassDUE:
		return "DUE"
	case ClassDCE:
		return "DCE"
	default:
		return "AVFClass?"
	}
}

// termClass classifies one backward term.
func (a *Analyzer) termClass(id pavf.TermID) AVFClass {
	t := a.universe.Term(id)
	if t.Kind != pavf.KindWritePort {
		return ClassSDC
	}
	structName, _, ok := strings.Cut(t.Name, ".")
	if !ok {
		return ClassSDC
	}
	st, ok := a.G.Design.Structures[structName]
	if !ok {
		return ClassSDC
	}
	switch st.Prot {
	case netlist.ProtParity:
		return ClassDUE
	case netlist.ProtECC:
		return ClassDCE
	default:
		return ClassSDC
	}
}

// Decomposition splits one node's AVF by fault outcome.
type Decomposition struct {
	SDC float64
	DUE float64
	DCE float64
}

// Total returns the full AVF (the three components sum to it).
func (d Decomposition) Total() float64 { return d.SDC + d.DUE + d.DCE }

// Decompose splits vertex v's resolved AVF into SDC/DUE/DCE using the
// backward term composition of its closed form.
func (r *Result) Decompose(v graph.VertexID) Decomposition {
	a := r.Analyzer
	avf := r.AVF[v]
	if avf == 0 {
		return Decomposition{}
	}
	x := r.Exprs[v]
	if !x.KnownBwd {
		return Decomposition{SDC: avf}
	}
	var wSDC, wDUE, wDCE float64
	for _, id := range x.Bwd.IDs() {
		w := r.Env[id]
		switch a.termClass(id) {
		case ClassDUE:
			wDUE += w
		case ClassDCE:
			wDCE += w
		default:
			wSDC += w
		}
	}
	total := wSDC + wDUE + wDCE
	if total == 0 {
		return Decomposition{SDC: avf}
	}
	return Decomposition{
		SDC: avf * wSDC / total,
		DUE: avf * wDUE / total,
		DCE: avf * wDCE / total,
	}
}

// SDCAVF returns the silent-corruption component of vertex v's AVF.
func (r *Result) SDCAVF(v graph.VertexID) float64 { return r.Decompose(v).SDC }

// DUEAVF returns the detected-uncorrectable component.
func (r *Result) DUEAVF(v graph.VertexID) float64 { return r.Decompose(v).DUE }

// Contributor is one pAVF source appearing in a node's closed form, with
// its current numeric contribution — the data a mitigation planner needs
// to know *which measured structure ports* drive a node's vulnerability.
type Contributor struct {
	Term  string
	Value float64
}

// Contributors lists the forward and backward sources of vertex v's
// closed-form equation, each with its current value under the result's
// environment, sorted by descending contribution.
func (r *Result) Contributors(v graph.VertexID) (fwd, bwd []Contributor) {
	collect := func(set pavf.Set, known bool) []Contributor {
		if !known {
			return nil
		}
		out := make([]Contributor, 0, set.Len())
		for _, id := range set.IDs() {
			out = append(out, Contributor{
				Term:  r.Analyzer.universe.Term(id).String(),
				Value: r.Env[id],
			})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Value != out[j].Value {
				return out[i].Value > out[j].Value
			}
			return out[i].Term < out[j].Term
		})
		return out
	}
	x := r.Exprs[v]
	return collect(x.Fwd, x.KnownFwd), collect(x.Bwd, x.KnownBwd)
}

// SeqDecomposition aggregates the decomposition over all sequential bits
// (unweighted sum of per-bit components divided by bit count).
func (r *Result) SeqDecomposition() Decomposition {
	var d Decomposition
	n := 0
	for v := 0; v < r.Analyzer.G.NumVerts(); v++ {
		if !r.IsSequentialBit(graph.VertexID(v)) {
			continue
		}
		dv := r.Decompose(graph.VertexID(v))
		d.SDC += dv.SDC
		d.DUE += dv.DUE
		d.DCE += dv.DCE
		n++
	}
	if n > 0 {
		d.SDC /= float64(n)
		d.DUE /= float64(n)
		d.DCE /= float64(n)
	}
	return d
}
