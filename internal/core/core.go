// Package core implements SART, the Sequential AVF Resolution Tool — the
// primary contribution of Raasch et al. (MICRO-48 2015).
//
// SART takes (1) a bit-level node graph extracted from RTL and (2) port-AVF
// measurements from an ACE-instrumented performance model, and computes a
// statistically meaningful AVF for every sequential bit in the design
// without simulating the RTL:
//
//   - forward walks propagate read-port pAVFs "down" the graph (§4.1.1),
//   - backward walks propagate write-port pAVFs "up" the graph (§4.1.2),
//   - joins take the set union of incoming values (numerically a capped
//     sum), splits copy, and each node resolves to the MIN of its forward
//     and backward conservative estimates (Table 1),
//   - configuration control registers are detected (by class, name, or
//     driving clock) and pinned to pAVF_R = 100% with no write-side walk,
//   - loop sequentials (SCC members) become loop-boundary nodes with an
//     injected static pAVF (§4.3; 0.3 per the Figure 8 study),
//   - debug/DFX logic is stripped from the analysis, and undriven design
//     boundary ports attach to pseudo-structures (§5.1),
//   - a FUB-partitioned relaxation mode reproduces the paper's operational
//     tool flow (per-FUB walks plus a FUBIO merge each iteration, §5.2),
//   - every node ends with a closed-form symbolic AVF equation that can be
//     re-evaluated against fresh pAVF measurements without re-walking.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/pavf"
)

// Options configure an Analyzer.
type Options struct {
	// LoopPAVF is the static pAVF injected at loop-boundary nodes
	// (§4.3). The paper selects 0.3 after the Figure 8 sweep.
	LoopPAVF float64
	// PseudoPAVF is the pAVF of the boundary pseudo-structures that stand
	// in for circuits outside the RTL under analysis. 1.0 is fully
	// conservative (equivalent to leaving the boundary unwalked).
	PseudoPAVF float64
	// ControlRegPrefixes lists node-name prefixes identifying
	// configuration control registers (in addition to ClassControl).
	ControlRegPrefixes []string
	// ControlRegClocks lists clock names identifying control registers.
	ControlRegClocks []string
	// Iterations bounds the partitioned relaxation. The paper found 20
	// sufficient for a Xeon-class design.
	Iterations int
	// Epsilon is the convergence threshold on the largest per-FUB change
	// in average node pAVF between relaxation iterations.
	Epsilon float64
	// DefaultPortPAVF, when non-negative, substitutes for structure ports
	// missing from the Inputs tables instead of failing. Use -1 (the
	// DefaultOptions value) to require complete inputs.
	DefaultPortPAVF float64
	// LoopOverrides assigns per-node loop-boundary pAVFs (keyed
	// "fub/node"), taking precedence over LoopPAVF. This implements the
	// paper's §4.3 solution 2: loop retention probabilities measured by
	// targeted RTL simulation are injected case by case.
	LoopOverrides map[string]float64
	// PseudoOverrides assigns pAVFs to individual boundary
	// pseudo-structure ports (keyed "EXT:FUB.port", as reported in the
	// closed forms), taking precedence over PseudoPAVF — §5.1's
	// pseudo-structures "with its own pAVF_R and pAVF_W values".
	PseudoOverrides map[string]float64
	// Workers bounds the goroutines used by SolvePartitioned's per-FUB
	// walks (§5.2 notes partitioning exists "to parallelize the task").
	// 0 or 1 runs serially; results are identical either way.
	Workers int
	// Obs receives solver telemetry: phase spans (env/fwd/bwd/finish,
	// per-iteration relaxation spans) and walk counters (vertices visited,
	// union ops, top-set short-circuits). nil disables instrumentation at
	// the cost of one nil check per phase.
	Obs *obs.Registry
}

// DefaultOptions returns the paper's operating point.
func DefaultOptions() Options {
	return Options{
		LoopPAVF:           0.3,
		PseudoPAVF:         1.0,
		ControlRegPrefixes: []string{"cfg_"},
		ControlRegClocks:   []string{"cfgclk"},
		Iterations:         20,
		Epsilon:            1e-9,
		DefaultPortPAVF:    -1,
	}
}

// Role classifies how SART treats each bit vertex.
type Role uint8

const (
	// RoleNormal bits receive propagated forward/backward estimates.
	RoleNormal Role = iota
	// RoleStructPort bits belong to structure read/write ports: walk
	// sources and sinks carrying measured pAVFs.
	RoleStructPort
	// RoleControl bits are configuration control registers: pAVF_R
	// pinned to 100%, write-side walk omitted (contributes 0).
	RoleControl
	// RoleLoop bits are sequentials inside feedback loops: injected
	// static pAVF in both directions.
	RoleLoop
	// RoleConst bits are hardwired constants: not fault sites; forward
	// contribution is conservatively ⊤.
	RoleConst
	// RoleDebug bits are stripped DFX logic: excluded from analysis and
	// statistics, contributing nothing in either direction.
	RoleDebug
	// RolePseudoIn bits are undriven FUB inputs fed by the boundary
	// pseudo-structure.
	RolePseudoIn
)

func (r Role) String() string {
	switch r {
	case RoleNormal:
		return "normal"
	case RoleStructPort:
		return "structport"
	case RoleControl:
		return "control"
	case RoleLoop:
		return "loop"
	case RoleConst:
		return "const"
	case RoleDebug:
		return "debug"
	case RolePseudoIn:
		return "pseudoin"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// StructPort names one structure port.
type StructPort struct {
	Struct string
	Port   string
}

func (p StructPort) String() string { return p.Struct + "." + p.Port }

// Inputs carries the measurements produced by the ACE performance model:
// per-port pAVFs (Equation-style ACE reads or writes per cycle) and
// per-structure AVFs (Equation 3), the latter used for the structure bits
// themselves and for the pre-sequential-AVF proxy model.
type Inputs struct {
	ReadPorts  map[StructPort]float64
	WritePorts map[StructPort]float64
	StructAVF  map[string]float64
}

// NewInputs returns empty input tables.
func NewInputs() *Inputs {
	return &Inputs{
		ReadPorts:  make(map[StructPort]float64),
		WritePorts: make(map[StructPort]float64),
		StructAVF:  make(map[string]float64),
	}
}

// Equal reports whether both input tables carry exactly the same
// measurements (same ports, bit-identical values). A result already
// evaluated against in needs no re-evaluation for an Equal table —
// the artifact store's warm-start path relies on this.
func (in *Inputs) Equal(other *Inputs) bool {
	if in == nil || other == nil {
		return in == other
	}
	return equalPortTable(in.ReadPorts, other.ReadPorts) &&
		equalPortTable(in.WritePorts, other.WritePorts) &&
		equalStructTable(in.StructAVF, other.StructAVF)
}

// equalPortTable compares one per-port measurement table. Factored out of
// Equal so callers deciding invalidation granularity (the incremental
// re-solve path) compare exactly what the warm-start path compares:
// measurement identity, never structure.
func equalPortTable(a, b map[StructPort]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func equalStructTable(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// Analyzer binds a bit graph to SART options, precomputing vertex roles,
// the term universe, walk sources, and the topological schedule. One
// Analyzer serves any number of Solve calls with different Inputs.
type Analyzer struct {
	G    *graph.Graph
	Opts Options

	roles []Role
	// fwdFixed/bwdFixed mark vertices whose contribution in that
	// direction is a fixed source set (fwdSrc/bwdSrc) rather than a
	// propagated value; an empty set means "contributes nothing".
	fwdFixed []bool
	bwdFixed []bool
	fwdSrc   []pavf.Set
	bwdSrc   []pavf.Set

	universe *pavf.Universe
	// readTerm/writeTerm map structure ports to their terms.
	readTerm  map[StructPort]pavf.TermID
	writeTerm map[StructPort]pavf.TermID
	loopTerms []pavf.TermID // term per loop node (indexed separately)
	ctrlTerm  pavf.TermID
	pseudoIn  map[graph.VertexID]pavf.TermID // per undriven input port node
	pseudoOut map[graph.VertexID]pavf.TermID // per unconsumed output port node

	topo []graph.VertexID // topological order of normal vertices

	fingerprint uint64 // design-identity hash, see Fingerprint

	// Per-FUB identity hashes, built lazily on first FubFingerprints call
	// (only the incremental re-solve path needs them).
	fubFpOnce sync.Once
	fubFps    []uint64

	// buildEnv's precomputed shape, built lazily on first use: the
	// workload-independent terms (Top, control, loop, pseudo) prefilled in
	// a template the per-workload environment is copied from, and the
	// port->term maps flattened into slices sorted by port so the
	// per-workload fill is a linear scan with stable error order.
	envOnce     sync.Once
	envTemplate pavf.Env
	readBind    []portBind
	writeBind   []portBind

	// Per-FUB topological schedules and the visited bitmap are
	// structural properties of the graph — independent of inputs — so
	// they are computed once and shared by every subsequent solve on
	// this analyzer. An incremental (ECO) re-solve in particular must
	// not pay O(V+E) schedule construction for work proportional to the
	// dirty region.
	topoOnce           sync.Once
	fwdTopos, bwdTopos [][]graph.VertexID
	topoErr            error

	visitedOnce sync.Once
	visitedBits []bool
}

// portBind is one structure port's term slot in the flattened form the
// environment builder iterates.
type portBind struct {
	sp StructPort
	t  pavf.TermID
}

// NewAnalyzer prepares g for SART analysis.
func NewAnalyzer(g *graph.Graph, opts Options) (*Analyzer, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 20
	}
	if opts.LoopPAVF < 0 || opts.LoopPAVF > 1 {
		return nil, fmt.Errorf("core: LoopPAVF %v out of [0,1]", opts.LoopPAVF)
	}
	if opts.PseudoPAVF < 0 || opts.PseudoPAVF > 1 {
		return nil, fmt.Errorf("core: PseudoPAVF %v out of [0,1]", opts.PseudoPAVF)
	}
	a := &Analyzer{
		G:         g,
		Opts:      opts,
		universe:  pavf.NewUniverse(),
		readTerm:  make(map[StructPort]pavf.TermID),
		writeTerm: make(map[StructPort]pavf.TermID),
		pseudoIn:  make(map[graph.VertexID]pavf.TermID),
		pseudoOut: make(map[graph.VertexID]pavf.TermID),
	}
	a.ctrlTerm = a.universe.Intern(pavf.Term{Kind: pavf.KindControlReg, Name: "CTRL"})
	a.classify()
	a.buildSources()
	topo, err := g.TopoOrder(func(v graph.VertexID) bool { return a.fwdFixed[v] })
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	a.topo = topo
	a.fingerprint = a.computeFingerprint()
	return a, nil
}

// Universe exposes the term universe (for formatting closed forms).
func (a *Analyzer) Universe() *pavf.Universe { return a.universe }

// Fingerprint is a stable hash of everything that determines the shape of
// the closed-form equations: the design's vertices, their roles, the edge
// structure, and the role-affecting options. Two analyzers with equal
// fingerprints produce identical Exprs for any Inputs, so the fingerprint
// keys compiled-plan caches (internal/sweep) and guards Reevaluate against
// cross-design misuse.
func (a *Analyzer) Fingerprint() uint64 { return a.fingerprint }

func (a *Analyzer) computeFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wStr := func(s string) {
		wInt(len(s))
		h.Write([]byte(s))
	}
	wStr(a.G.Design.Name)
	wInt(len(a.G.FubNames))
	for _, f := range a.G.FubNames {
		wStr(f)
	}
	for _, p := range a.Opts.ControlRegPrefixes {
		wStr(p)
	}
	for _, c := range a.Opts.ControlRegClocks {
		wStr(c)
	}
	n := a.G.NumVerts()
	wInt(n)
	for v := 0; v < n; v++ {
		vx := &a.G.Verts[v]
		wStr(vx.Node.Name)
		wInt(int(vx.Fub))
		wInt(int(vx.Bit))
		wInt(int(vx.Node.Kind))
		wInt(int(vx.Node.Class))
		wInt(int(a.roles[v]))
		// Structure binding and clock determine the vertex's terms and
		// control-register detection: a port rebound to a different
		// structure changes the equations even with identical edges.
		wStr(vx.Node.Struct)
		wStr(vx.Node.Port)
		wStr(vx.Node.Clock)
		for _, s := range a.G.Succs(graph.VertexID(v)) {
			wInt(int(s))
		}
	}
	return h.Sum64()
}

// BuildEnv maps Inputs onto the term universe, producing the numeric
// environment the closed forms evaluate under. Exposed for the batch sweep
// engine (internal/sweep), which re-evaluates compiled plans against many
// environments without re-walking.
func (a *Analyzer) BuildEnv(in *Inputs) (pavf.Env, error) { return a.buildEnv(in) }

// CheckInputs verifies that in plausibly belongs to this design: every
// structure port it names must exist in the analyzed graph. A table carrying
// ports the design does not have was measured for (or bound to) a different
// design; applying it silently would leave this design's own ports at their
// defaults while the stray measurements are dropped on the floor. With
// several stray ports the lexicographically smallest is named, so the
// error is stable across runs rather than following map iteration order.
func (a *Analyzer) CheckInputs(in *Inputs) error {
	var stray StructPort
	kind := ""
	for sp := range in.ReadPorts {
		if _, ok := a.readTerm[sp]; !ok && (kind == "" || sp.String() < stray.String()) {
			stray, kind = sp, "read"
		}
	}
	for sp := range in.WritePorts {
		if _, ok := a.writeTerm[sp]; !ok && (kind == "" || sp.String() < stray.String()) {
			stray, kind = sp, "write"
		}
	}
	if kind != "" {
		return fmt.Errorf("core: inputs reference %s port %s, which design %q does not have", kind, stray, a.G.Design.Name)
	}
	return nil
}

// Role returns the role assigned to vertex v.
func (a *Analyzer) Role(v graph.VertexID) Role { return a.roles[v] }

// isControlReg applies the paper's §5.1 detection: explicit class, node
// name prefix, or driving clock.
func (a *Analyzer) isControlReg(n *netlist.Node) bool {
	if n.Kind != netlist.KindSeq {
		return false
	}
	if n.Class == netlist.ClassControl {
		return true
	}
	base := n.Name
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	for _, p := range a.Opts.ControlRegPrefixes {
		if strings.HasPrefix(base, p) {
			return true
		}
	}
	for _, c := range a.Opts.ControlRegClocks {
		if n.Clock != "" && n.Clock == c {
			return true
		}
	}
	return false
}

func (a *Analyzer) classify() {
	n := a.G.NumVerts()
	a.roles = make([]Role, n)
	for v := 0; v < n; v++ {
		vx := &a.G.Verts[v]
		node := vx.Node
		switch {
		case node.Class == netlist.ClassDebug:
			a.roles[v] = RoleDebug
		case node.Kind == netlist.KindStructRead || node.Kind == netlist.KindStructWrite:
			a.roles[v] = RoleStructPort
		case a.isControlReg(node):
			a.roles[v] = RoleControl
		case node.Kind == netlist.KindSeq && vx.InLoop:
			a.roles[v] = RoleLoop
		case node.Kind == netlist.KindConst:
			a.roles[v] = RoleConst
		case node.Kind == netlist.KindInput && !a.G.DrivenInputs[graph.VertexID(v)]:
			a.roles[v] = RolePseudoIn
		default:
			a.roles[v] = RoleNormal
		}
	}
}

// buildSources assigns fixed forward/backward contributions per role.
func (a *Analyzer) buildSources() {
	n := a.G.NumVerts()
	a.fwdFixed = make([]bool, n)
	a.bwdFixed = make([]bool, n)
	a.fwdSrc = make([]pavf.Set, n)
	a.bwdSrc = make([]pavf.Set, n)
	loopTermOf := make(map[*netlist.Node]pavf.TermID)

	for v := 0; v < n; v++ {
		vx := &a.G.Verts[v]
		node := vx.Node
		id := graph.VertexID(v)
		switch a.roles[v] {
		case RoleStructPort:
			sp := StructPort{Struct: node.Struct, Port: node.Port}
			var term pavf.TermID
			if node.Kind == netlist.KindStructRead {
				term = a.universe.Intern(pavf.Term{Kind: pavf.KindReadPort, Name: sp.String()})
				a.readTerm[sp] = term
			} else {
				term = a.universe.Intern(pavf.Term{Kind: pavf.KindWritePort, Name: sp.String()})
				a.writeTerm[sp] = term
			}
			set := pavf.Singleton(term)
			a.fwdFixed[v], a.fwdSrc[v] = true, set
			a.bwdFixed[v], a.bwdSrc[v] = true, set
		case RoleControl:
			// pAVF_R = 100% forward; write-side walk omitted: the
			// backward contribution through a control register is 0.
			a.fwdFixed[v], a.fwdSrc[v] = true, pavf.Singleton(a.ctrlTerm)
			a.bwdFixed[v], a.bwdSrc[v] = true, pavf.Set{}
		case RoleLoop:
			term, ok := loopTermOf[node]
			if !ok {
				term = a.universe.Intern(pavf.Term{Kind: pavf.KindLoop, Name: a.loopName(id)})
				loopTermOf[node] = term
				a.loopTerms = append(a.loopTerms, term)
			}
			set := pavf.Singleton(term)
			a.fwdFixed[v], a.fwdSrc[v] = true, set
			a.bwdFixed[v], a.bwdSrc[v] = true, set
		case RoleConst:
			// A constant is not a fault site, but logic it feeds can be
			// corrupted whenever downstream consumption is ACE; without
			// source information we stay conservative (⊤) forward.
			a.fwdFixed[v], a.fwdSrc[v] = true, pavf.TopSet()
			// No preds exist; backward fixing is unnecessary but cheap.
			a.bwdFixed[v], a.bwdSrc[v] = true, pavf.Set{}
		case RoleDebug:
			a.fwdFixed[v], a.fwdSrc[v] = true, pavf.Set{}
			a.bwdFixed[v], a.bwdSrc[v] = true, pavf.Set{}
		case RolePseudoIn:
			term := a.universe.Intern(pavf.Term{Kind: pavf.KindPseudo, Name: a.portName(id)})
			a.pseudoIn[id] = term
			a.fwdFixed[v], a.fwdSrc[v] = true, pavf.Singleton(term)
		}
		// Unconsumed FUB outputs additionally act as backward pseudo
		// sources, regardless of role.
		if node.Kind == netlist.KindOutput && !a.G.ConsumedOutputs[id] && a.roles[v] == RoleNormal {
			term := a.universe.Intern(pavf.Term{Kind: pavf.KindPseudo, Name: a.portName(id)})
			a.pseudoOut[id] = term
			a.bwdFixed[v] = true
			a.bwdSrc[v] = pavf.Singleton(term)
		}
	}
}

// loopName labels a loop-boundary node's term: all bits of the node share
// one term (joins of distinct loop nodes still sum).
func (a *Analyzer) loopName(v graph.VertexID) string {
	vx := &a.G.Verts[v]
	return a.G.FubNames[vx.Fub] + "/" + vx.Node.Name
}

// portName labels a boundary pseudo-structure term for a FUB port node.
func (a *Analyzer) portName(v graph.VertexID) string {
	vx := &a.G.Verts[v]
	return "EXT:" + a.G.FubNames[vx.Fub] + "." + vx.Node.Name
}

// envPrep builds the workload-independent half of the environment once:
// the template carries Top, the control term, and every loop and pseudo
// term (with their Options overrides applied exactly as the per-workload
// builder used to), and the port->term maps are flattened into sorted
// slices so per-workload fills touch no map iterators and report the
// lexicographically first failing port, matching CheckInputs' stability.
func (a *Analyzer) envPrep() {
	a.envOnce.Do(func() {
		env := pavf.NewEnv(a.universe)
		env.Set(a.ctrlTerm, 1.0)
		for _, t := range a.loopTerms {
			v := a.Opts.LoopPAVF
			if ov, ok := a.Opts.LoopOverrides[a.universe.Term(t).Name]; ok {
				if ov < 0 {
					ov = 0
				}
				if ov > 1 {
					ov = 1
				}
				v = ov
			}
			env.Set(t, v)
		}
		setPseudo := func(t pavf.TermID) {
			v := a.Opts.PseudoPAVF
			if ov, ok := a.Opts.PseudoOverrides[a.universe.Term(t).Name]; ok {
				v = ov
			}
			env.Set(t, v)
		}
		for _, t := range a.pseudoIn {
			setPseudo(t)
		}
		for _, t := range a.pseudoOut {
			setPseudo(t)
		}
		flatten := func(m map[StructPort]pavf.TermID) []portBind {
			bs := make([]portBind, 0, len(m))
			for sp, t := range m {
				bs = append(bs, portBind{sp, t})
			}
			sort.Slice(bs, func(i, j int) bool { return bs[i].sp.String() < bs[j].sp.String() })
			return bs
		}
		a.readBind = flatten(a.readTerm)
		a.writeBind = flatten(a.writeTerm)
		// With a default port pAVF the unmeasured ports are also workload
		// independent: prefill them (Set clamps, as the per-port fill
		// would), so CheckedEnv's fast pass only touches measured ports.
		if a.Opts.DefaultPortPAVF >= 0 {
			for _, b := range a.readBind {
				env.Set(b.t, a.Opts.DefaultPortPAVF)
			}
			for _, b := range a.writeBind {
				env.Set(b.t, a.Opts.DefaultPortPAVF)
			}
		}
		a.envTemplate = env
	})
}

// buildEnv maps Inputs onto the term universe: the precomputed template
// supplies the workload-independent terms, and the flattened port
// bindings — sorted by port, so error order is stable — fill the
// measured (or defaulted) port pAVFs.
func (a *Analyzer) buildEnv(in *Inputs) (pavf.Env, error) {
	a.envPrep()
	env := make(pavf.Env, len(a.envTemplate))
	copy(env, a.envTemplate)
	fill := func(m map[StructPort]float64, binds []portBind, what string) error {
		for _, b := range binds {
			v, ok := m[b.sp]
			switch {
			case ok:
				if v < 0 || v > 1 {
					return fmt.Errorf("core: %s pAVF for %s out of [0,1]: %v", what, b.sp, v)
				}
			case a.Opts.DefaultPortPAVF >= 0:
				v = a.Opts.DefaultPortPAVF
			default:
				return fmt.Errorf("core: missing %s pAVF for structure port %s", what, b.sp)
			}
			env.Set(b.t, v)
		}
		return nil
	}
	if err := fill(in.ReadPorts, a.readBind, "read"); err != nil {
		return nil, err
	}
	if err := fill(in.WritePorts, a.writeBind, "write"); err != nil {
		return nil, err
	}
	return env, nil
}

// CheckedEnv fuses CheckInputs and BuildEnv into a single hash pass: it
// walks each input table once, resolving every measured port against the
// design's term map — which detects stray ports for free — on top of a
// template that already carries the workload-independent terms and the
// port defaults. That is half the hashing of checking and then building,
// and it is the path the sweep engine takes per workload. Anything
// irregular — a stray port, an out-of-range value, a missing measurement
// with no default — falls back to CheckInputs followed by the sorted
// slow fill, so errors and their precedence are exactly those of calling
// CheckInputs then BuildEnv.
func (a *Analyzer) CheckedEnv(in *Inputs) (pavf.Env, error) {
	a.envPrep()
	env := make(pavf.Env, len(a.envTemplate))
	copy(env, a.envTemplate)
	fast := func(m map[StructPort]float64, terms map[StructPort]pavf.TermID) bool {
		for sp, v := range m {
			t, ok := terms[sp]
			if !ok || v < 0 || v > 1 {
				return false
			}
			env[t] = v
		}
		return true
	}
	ok := fast(in.ReadPorts, a.readTerm) && fast(in.WritePorts, a.writeTerm)
	if ok && a.Opts.DefaultPortPAVF < 0 {
		// No default: every design port must have been measured.
		ok = len(in.ReadPorts) == len(a.readBind) && len(in.WritePorts) == len(a.writeBind)
	}
	if !ok {
		if err := a.CheckInputs(in); err != nil {
			return nil, err
		}
		return a.buildEnv(in)
	}
	return env, nil
}

// ReadPortTerms returns the read ports the design references (useful for
// checking Inputs coverage).
func (a *Analyzer) ReadPortTerms() []StructPort {
	out := make([]StructPort, 0, len(a.readTerm))
	for sp := range a.readTerm {
		out = append(out, sp)
	}
	return out
}

// WritePortTerms returns the write ports the design references.
func (a *Analyzer) WritePortTerms() []StructPort {
	out := make([]StructPort, 0, len(a.writeTerm))
	for sp := range a.writeTerm {
		out = append(out, sp)
	}
	return out
}

// NumLoopTerms returns the count of distinct loop-boundary nodes.
func (a *Analyzer) NumLoopTerms() int { return len(a.loopTerms) }
