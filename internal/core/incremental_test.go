package core

import (
	"math"
	"sort"
	"testing"

	"seqavf/internal/graph/graphtest"
	"seqavf/internal/stats"
)

// randPortInputs fills every structure port of a with seeded pAVFs.
// Ports are filled in sorted order, so two designs exposing the same
// port set receive bit-identical tables from the same seed — which is
// what lets the harness hold the workload fixed across an edit.
func randPortInputs(a *Analyzer, seed uint64) *Inputs {
	rng := stats.New(seed)
	in := NewInputs()
	fill := func(ports []StructPort, m map[StructPort]float64) {
		sort.Slice(ports, func(i, j int) bool { return ports[i].String() < ports[j].String() })
		for _, sp := range ports {
			m[sp] = rng.Float64()
		}
	}
	fill(a.ReadPortTerms(), in.ReadPorts)
	fill(a.WritePortTerms(), in.WritePorts)
	return in
}

// editHarness solves a seeded base design, applies one seeded edit, and
// returns everything the differential assertions need.
type editHarness struct {
	base    *graphtest.Design
	baseRes *Result
	prior   *PriorState
	aNew    *Analyzer
	edit    *graphtest.Edit
	inSeed  uint64
}

func buildEditHarness(t *testing.T, seed uint64, kind graphtest.EditKind) *editHarness {
	t.Helper()
	cfg := graphtest.Small(seed)
	// Four FUBs so even a three-FUB rewire leaves a clean one: the
	// locality assertion (dirty < total) must be satisfiable for every
	// edit kind.
	cfg.Fubs = 4
	base, err := graphtest.Generate(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	aBase, err := NewAnalyzer(base.Graph, DefaultOptions())
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	inSeed := seed ^ 0xABCD1234
	res, err := aBase.SolvePartitioned(randPortInputs(aBase, inSeed))
	if err != nil {
		t.Fatalf("seed %d: base solve: %v", seed, err)
	}
	prior, err := res.PriorState()
	if err != nil {
		t.Fatalf("seed %d: PriorState: %v", seed, err)
	}
	_, g2, edit, err := base.ApplyEdit(kind, seed^0x9E3779B97F4A7C15)
	if err != nil {
		t.Fatalf("seed %d kind %v: %v", seed, kind, err)
	}
	aNew, err := NewAnalyzer(g2, DefaultOptions())
	if err != nil {
		t.Fatalf("seed %d kind %v: edited analyzer: %v", seed, kind, err)
	}
	return &editHarness{base: base, baseRes: res, prior: prior, aNew: aNew, edit: edit, inSeed: inSeed}
}

// TestIncrementalMatchesFromScratch is the differential harness: across
// 200 seeds spread over the four structural edit kinds, an incremental
// re-solve seeded from the pre-edit artifact state must converge to the
// same per-node AVFs as solving the edited design from scratch, while
// dirtying no more FUBs than the edit actually touched.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	kinds := []graphtest.EditKind{
		graphtest.EditAddFlop, graphtest.EditRemoveFlop,
		graphtest.EditRetimeCell, graphtest.EditRewireFubio,
	}
	const seeds = 50 // × 4 kinds = 200 differential cases
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= seeds; seed++ {
				h := buildEditHarness(t, seed, kind)
				in := randPortInputs(h.aNew, h.inSeed)
				incr, st, err := h.aNew.ResolveIncremental(in, h.prior)
				if err != nil {
					t.Fatalf("seed %d (%s): ResolveIncremental: %v", seed, h.edit.Desc, err)
				}
				scratch, err := h.aNew.SolvePartitioned(randPortInputs(h.aNew, h.inSeed))
				if err != nil {
					t.Fatalf("seed %d: scratch solve: %v", seed, err)
				}
				d := MaxAbsDiff(incr, scratch)
				if math.IsNaN(d) || d > h.aNew.Opts.Epsilon {
					t.Fatalf("seed %d (%s): incremental diverges from scratch by %v (dirty=%d active=%d iters=%d)",
						seed, h.edit.Desc, d, st.FubsDirty, st.FubsActive, st.Iterations)
				}
				if !incr.Converged || !scratch.Converged {
					t.Fatalf("seed %d (%s): converged incremental=%v scratch=%v",
						seed, h.edit.Desc, incr.Converged, scratch.Converged)
				}
				// Locality: the fingerprint diff may dirty only FUBs the
				// edit touched, and a local edit must leave reuse on the
				// table.
				if st.FubsDirty > len(h.edit.TouchedFubs) {
					t.Fatalf("seed %d (%s): %d FUBs dirty but the edit touched only %v",
						seed, h.edit.Desc, st.FubsDirty, h.edit.TouchedFubs)
				}
				if st.FubsDirty >= st.FubsTotal {
					t.Fatalf("seed %d (%s): local edit dirtied all %d FUBs", seed, h.edit.Desc, st.FubsTotal)
				}
				if st.FubsActive+st.FubsReused != st.FubsTotal {
					t.Fatalf("seed %d: inconsistent stats %+v", seed, st)
				}
			}
		})
	}
}

// TestPavfOnlyEditDirtiesNothing is the satellite regression: an edit
// that changes only measured pAVFs — no structure — must invalidate zero
// FUBs and skip the relaxation entirely. Under new inputs the result must
// match the §5.1 closed-form contract bit-for-bit (prior equations
// re-evaluated, i.e. Reevaluate on the prior result); under the original
// inputs the prior's evaluated AVFs must come back bit-identically.
func TestPavfOnlyEditDirtiesNothing(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		h := buildEditHarness(t, seed, graphtest.EditPavfOnly)
		if len(h.edit.TouchedFubs) != 0 {
			t.Fatalf("seed %d: pavf-only edit reports touched FUBs %v", seed, h.edit.TouchedFubs)
		}
		// Perturbed workload: new pAVF values, same structure.
		in := randPortInputs(h.aNew, h.inSeed+777)
		incr, st, err := h.aNew.ResolveIncremental(in, h.prior)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.FubsDirty != 0 || st.FubsReused != st.FubsTotal || st.Iterations != 0 {
			t.Fatalf("seed %d: pavf-only edit produced stats %+v, want zero dirty and zero iterations", seed, st)
		}
		// The differential baseline for unchanged structure + new inputs is
		// the repo's standing warm-start semantics: plug the new pAVFs into
		// the prior closed forms (Reevaluate), not a fresh walk — the walk's
		// value-based stopping rule makes fresh sets env-dependent.
		if err := h.baseRes.Reevaluate(randPortInputs(h.baseRes.Analyzer, h.inSeed+777)); err != nil {
			t.Fatalf("seed %d: Reevaluate: %v", seed, err)
		}
		for v := range h.baseRes.AVF {
			if incr.AVF[v] != h.baseRes.AVF[v] {
				t.Fatalf("seed %d: vertex %d AVF %v != reevaluated prior %v (must be bit-identical)",
					seed, v, incr.AVF[v], h.baseRes.AVF[v])
			}
		}
		// Identical workload: the prior's evaluated AVFs must be reused
		// bit-for-bit without touching the expressions at all.
		same, st2, err := h.aNew.ResolveIncremental(randPortInputs(h.aNew, h.inSeed), h.prior)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st2.FubsDirty != 0 {
			t.Fatalf("seed %d: equal-input re-solve dirtied %d FUBs", seed, st2.FubsDirty)
		}
		base := 0
		for _, fp := range h.prior.Fubs {
			for i, want := range fp.AVF {
				if got := same.AVF[base+i]; got != want {
					t.Fatalf("seed %d: FUB %s vertex %d: reused AVF %v != prior %v", seed, fp.Name, i, got, want)
				}
			}
			base += len(fp.AVF)
		}
	}
}

// TestFubFingerprintsStability pins the per-FUB fingerprint contract:
// deterministic across analyzer constructions, invariant under pAVF-only
// regeneration, and perturbed for exactly the touched FUBs by a
// structural edit.
func TestFubFingerprintsStability(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		cfg := graphtest.Small(seed)
		cfg.Fubs = 4
		d1, err := graphtest.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := graphtest.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := NewAnalyzer(d1.Graph, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		a2, err := NewAnalyzer(d2.Graph, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		f1, f2 := a1.FubFingerprints(), a2.FubFingerprints()
		if len(f1) != len(f2) {
			t.Fatalf("seed %d: fingerprint counts differ", seed)
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("seed %d: FUB %s fingerprint not deterministic", seed, d1.Graph.FubNames[i])
			}
		}
		// A structural edit must change the touched FUBs' fingerprints
		// and no others.
		_, g2, edit, err := d1.ApplyEdit(graphtest.EditAddFlop, seed+99)
		if err != nil {
			t.Fatal(err)
		}
		aEd, err := NewAnalyzer(g2, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fEd := aEd.FubFingerprints()
		touched := make(map[string]bool)
		for _, f := range edit.TouchedFubs {
			touched[f] = true
		}
		for i, name := range d1.Graph.FubNames {
			changed := f1[i] != fEd[i]
			if changed != touched[name] {
				t.Fatalf("seed %d: FUB %s fingerprint changed=%v but touched=%v (%s)",
					seed, name, changed, touched[name], edit.Desc)
			}
		}
	}
}
