package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"seqavf/internal/graph"
	"seqavf/internal/pavf"
)

// This file implements incremental (ECO) re-solving: after a local netlist
// edit, only the FUBs whose structure actually changed — plus whatever
// FUBIO neighborhood the change perturbs — are re-walked, while every
// other FUB's converged walk state is reused verbatim from a prior solve.
//
// The scheme rests on two facts about the partitioned relaxation (§5.2):
//
//  1. Loop cutting makes the non-fixed dependency graph a global DAG
//     (NewAnalyzer's TopoOrder proves it), so the relaxation fixpoint is
//     unique. Seeding from any state — including the previous design's
//     converged state — converges to the same sets as solving cold.
//  2. Term names ("Struct.port", "fub/node", "EXT:FUB.node") are stable
//     across edits, so a prior universe's term IDs can be remapped onto
//     an edited design's universe by name; a term that no longer exists
//     simply forces the FUBs referencing it dirty.

// fubExtent is the contiguous vertex range [start, end) one FUB occupies
// in the graph's vertex array (graph.Build appends FUB by FUB).
type fubExtent struct{ start, end int }

func (a *Analyzer) fubExtents() []fubExtent {
	exts := make([]fubExtent, len(a.G.FubNames))
	for i := range exts {
		exts[i] = fubExtent{-1, -1}
	}
	for v := 0; v < a.G.NumVerts(); v++ {
		f := a.G.Verts[v].Fub
		if exts[f].start < 0 {
			exts[f].start = v
		}
		exts[f].end = v + 1
	}
	for i := range exts {
		if exts[i].start < 0 {
			exts[i] = fubExtent{}
		}
	}
	return exts
}

// FubFingerprints returns one stable hash per FUB (indexed like
// G.FubNames) covering everything that determines that FUB's closed
// forms: its vertices (name, bit, kind, class, structure binding, clock,
// role), its intra-FUB edge structure in local indices, the
// role-affecting options, and a boundary signature naming every FUBIO
// peer bit by stable labels rather than graph-global vertex IDs. Two
// designs assigning a FUB equal fingerprints produce identical equations
// for that FUB's vertices given identical boundary values, which is what
// lets ResolveIncremental reuse a prior solve's per-FUB state.
func (a *Analyzer) FubFingerprints() []uint64 {
	a.fubFpOnce.Do(func() { a.fubFps = a.computeFubFingerprints() })
	return a.fubFps
}

func (a *Analyzer) computeFubFingerprints() []uint64 {
	exts := a.fubExtents()
	out := make([]uint64, len(exts))
	var cross []string
	for f := range exts {
		h := fnv.New64a()
		var buf [8]byte
		wInt := func(v int) {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		wStr := func(s string) {
			wInt(len(s))
			h.Write([]byte(s))
		}
		wStr(a.G.FubNames[f])
		for _, p := range a.Opts.ControlRegPrefixes {
			wStr(p)
		}
		for _, c := range a.Opts.ControlRegClocks {
			wStr(c)
		}
		ext := exts[f]
		wInt(ext.end - ext.start)
		for v := ext.start; v < ext.end; v++ {
			vx := &a.G.Verts[v]
			wStr(vx.Node.Name)
			wInt(int(vx.Bit))
			wInt(int(vx.Node.Kind))
			wInt(int(vx.Node.Class))
			wInt(int(a.roles[v]))
			wStr(vx.Node.Struct)
			wStr(vx.Node.Port)
			wStr(vx.Node.Clock)
			// Intra-FUB successors in local indices; cross edges in both
			// directions by peer label, sorted so the signature does not
			// depend on global connect declaration order.
			cross = cross[:0]
			for _, s := range a.G.Succs(graph.VertexID(v)) {
				if a.G.Verts[s].Fub == vx.Fub {
					wInt(int(s) - ext.start)
				} else {
					cross = append(cross, ">"+a.G.Name(s))
				}
			}
			wInt(-1)
			for _, p := range a.G.Preds(graph.VertexID(v)) {
				if a.G.Verts[p].Fub != vx.Fub {
					cross = append(cross, "<"+a.G.Name(p))
				}
			}
			sort.Strings(cross)
			for _, c := range cross {
				wStr(c)
			}
		}
		out[f] = h.Sum64()
	}
	return out
}

// FubPrior is one FUB's slice of a prior solve: its fingerprint at solve
// time plus, per local vertex, indices into PriorState.Sets for the
// converged forward/backward sets (-1 = that side unknown) and the
// evaluated AVF.
type FubPrior struct {
	Name        string
	Fingerprint uint64
	FwdIdx      []int32
	BwdIdx      []int32
	AVF         []float64
}

// PriorState is the distilled converged walk state of a previously solved
// design, in a form an edited design can be seeded from: a deduplicated
// set table over the prior universe plus per-FUB vertex state keyed by
// FUB name. Obtain one from Result.PriorState (live) or
// artifact.DecodePrior (persisted).
type PriorState struct {
	Design   string
	Universe *pavf.Universe
	// Inputs the prior AVFs were evaluated under; may be nil (unknown).
	Inputs *Inputs
	Sets   []pavf.Set
	Fubs   []FubPrior
}

// setKey builds a map key for a set's exact term-ID sequence.
func setKey(s pavf.Set) string {
	ids := s.IDs()
	b := make([]byte, 4*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(id))
	}
	return string(b)
}

// PriorState distills this result into the seed form ResolveIncremental
// consumes. The set table is deduplicated: expression propagation shares
// set objects heavily, so the table is typically orders of magnitude
// smaller than two sets per vertex.
func (r *Result) PriorState() (*PriorState, error) {
	a := r.Analyzer
	n := a.G.NumVerts()
	if len(r.Exprs) != n || len(r.AVF) != n {
		return nil, fmt.Errorf("core: result holds %d equations and %d AVFs but design %q has %d vertices",
			len(r.Exprs), len(r.AVF), a.G.Design.Name, n)
	}
	fps := a.FubFingerprints()
	exts := a.fubExtents()
	ps := &PriorState{Design: a.G.Design.Name, Universe: a.universe, Inputs: r.Inputs}
	intern := make(map[string]int32)
	add := func(s pavf.Set, known bool) int32 {
		if !known {
			return -1
		}
		key := setKey(s)
		if id, ok := intern[key]; ok {
			return id
		}
		id := int32(len(ps.Sets))
		ps.Sets = append(ps.Sets, s)
		intern[key] = id
		return id
	}
	for f := range exts {
		sz := exts[f].end - exts[f].start
		fp := FubPrior{
			Name:        a.G.FubNames[f],
			Fingerprint: fps[f],
			FwdIdx:      make([]int32, 0, sz),
			BwdIdx:      make([]int32, 0, sz),
			AVF:         make([]float64, 0, sz),
		}
		for v := exts[f].start; v < exts[f].end; v++ {
			x := r.Exprs[v]
			fp.FwdIdx = append(fp.FwdIdx, add(x.Fwd, x.KnownFwd))
			fp.BwdIdx = append(fp.BwdIdx, add(x.Bwd, x.KnownBwd))
			fp.AVF = append(fp.AVF, r.AVF[v])
		}
		ps.Fubs = append(ps.Fubs, fp)
	}
	return ps, nil
}

// Incremental reports what one ResolveIncremental call reused versus
// recomputed.
type Incremental struct {
	// FubsTotal counts the edited design's FUBs.
	FubsTotal int `json:"fubs_total"`
	// FubsDirty counts FUBs whose prior state was unusable: fingerprint
	// mismatch, no prior entry, or a term remap failure.
	FubsDirty int `json:"fubs_dirty"`
	// FubsActive counts FUBs the relaxation actually walked: the dirty
	// set, its FUBIO neighbors, and any frontier growth.
	FubsActive int `json:"fubs_active"`
	// FubsReused counts FUBs whose converged state was taken verbatim
	// from the prior solve (FubsTotal - FubsActive).
	FubsReused int  `json:"fubs_reused"`
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
}

// ResolveIncremental solves the design seeded from a prior solve's
// converged state: per-FUB fingerprints are diffed against the prior,
// clean FUBs keep their walk state, and the relaxation iterates only the
// dirty FUBs plus their FUBIO neighbors — expanding that frontier
// whenever the merge pass moves an active FUB's boundary set — until the
// active region converges. The fixpoint is unique (the loop-cut
// dependency graph is a DAG), so under the inputs the prior was solved
// with the result matches a from-scratch SolvePartitioned within
// Epsilon. Under different inputs the reused FUBs follow the §5.1
// closed-form contract instead — prior equations re-evaluated, exactly
// like a warm-start Reevaluate; with zero dirty FUBs and Equal inputs
// the prior AVFs are returned bit-identically.
func (a *Analyzer) ResolveIncremental(in *Inputs, prior *PriorState) (*Result, *Incremental, error) {
	return a.ResolveIncrementalContext(context.Background(), in, prior)
}

// ResolveIncrementalContext is ResolveIncremental with request-scoped
// tracing: the solve_incremental span nests under ctx's current span.
func (a *Analyzer) ResolveIncrementalContext(ctx context.Context, in *Inputs, prior *PriorState) (*Result, *Incremental, error) {
	if prior == nil {
		return nil, nil, fmt.Errorf("core: ResolveIncremental: nil prior state")
	}
	reg := a.Opts.Obs
	sp := reg.StartSpanContext(ctx, "solve_incremental")
	defer sp.End()
	start := time.Now()
	esp := sp.Child("env")
	env, err := a.buildEnv(in)
	esp.End()
	if err != nil {
		return nil, nil, err
	}
	n := a.G.NumVerts()
	numFubs := len(a.G.FubNames)
	exts := a.fubExtents()
	fps := a.FubFingerprints()
	sp.SetAttr("vertices", n)
	sp.SetAttr("fubs", numFubs)

	// Remap the prior's term space onto this analyzer's universe by term
	// identity (kind + name), then remap each unique prior set once. A
	// term the edited design no longer interns marks its sets — and any
	// FUB referencing them — dirty.
	sets, setOK := remapSets(prior, a.universe)

	priorByName := make(map[string]*FubPrior, len(prior.Fubs))
	for i := range prior.Fubs {
		priorByName[prior.Fubs[i].Name] = &prior.Fubs[i]
	}
	dirty := make([]bool, numFubs)
	fubPrior := make([]*FubPrior, numFubs)
	nDirty := 0
	for f := 0; f < numFubs; f++ {
		p := priorByName[a.G.FubNames[f]]
		sz := exts[f].end - exts[f].start
		ok := p != nil && p.Fingerprint == fps[f] &&
			len(p.FwdIdx) == sz && len(p.BwdIdx) == sz && len(p.AVF) == sz
		if ok {
			ok = idxUsable(p.FwdIdx, setOK) && idxUsable(p.BwdIdx, setOK)
		}
		if ok {
			fubPrior[f] = p
		} else {
			dirty[f] = true
			nDirty++
		}
	}

	st := &Incremental{FubsTotal: numFubs, FubsDirty: nDirty}
	finishUp := func(r *Result) {
		reg.Counter("solve.fubs_dirty").Add(int64(st.FubsDirty))
		reg.Counter("solve.fubs_reused").Add(int64(st.FubsReused))
		reg.Histogram("solve.incremental_seconds").Observe(time.Since(start).Seconds())
		reg.Counter("core.solves").Inc()
		sp.SetAttr("fubs_dirty", st.FubsDirty)
		sp.SetAttr("fubs_reused", st.FubsReused)
		sp.SetAttr("iterations", st.Iterations)
		sp.SetAttr("converged", st.Converged)
		r.Iterations = st.Iterations
		r.Converged = st.Converged
	}

	if nDirty == 0 {
		// Structurally untouched design: every FUB's closed forms carry
		// over. With Equal inputs even the evaluated AVFs are reused
		// bit-for-bit — a pAVF-only edit costs one evaluation at most.
		r := &Result{Analyzer: a, Inputs: in, Env: env,
			Exprs: make([]pavf.Expr, n), AVF: make([]float64, n)}
		reuseAVF := prior.Inputs.Equal(in)
		for f := 0; f < numFubs; f++ {
			p := fubPrior[f]
			base := exts[f].start
			for i := range p.FwdIdx {
				v := base + i
				x := &r.Exprs[v]
				if idx := p.FwdIdx[i]; idx >= 0 {
					x.Fwd, x.KnownFwd = sets[idx], true
				}
				if idx := p.BwdIdx[i]; idx >= 0 {
					x.Bwd, x.KnownBwd = sets[idx], true
				}
				if reuseAVF {
					r.AVF[v] = p.AVF[i]
				} else {
					r.AVF[v] = x.Eval(env)
				}
			}
		}
		r.Visited = a.visited()
		st.FubsReused = numFubs
		st.Converged = true
		finishUp(r)
		return r, st, nil
	}

	// Initial active set: dirty FUBs plus FUBIO neighbors, both edge
	// directions (a dirty FUB perturbs downstream forward values and
	// upstream backward values alike).
	active := make([]bool, numFubs)
	copy(active, dirty)
	for _, e := range a.G.CrossEdges {
		ff, tf := a.G.Verts[e.From].Fub, a.G.Verts[e.To].Fub
		if dirty[ff] {
			active[tf] = true
		}
		if dirty[tf] {
			active[ff] = true
		}
	}

	fwdTopo, bwdTopo, err := a.localTopos()
	if err != nil {
		return nil, nil, err
	}
	fwdPrev := make([]pavf.Set, n)
	fwdPrevKnown := make([]bool, n)
	bwdPrev := make([]pavf.Set, n)
	bwdPrevKnown := make([]bool, n)
	fwdCur := make([]pavf.Set, n)
	bwdCur := make([]pavf.Set, n)
	bwdCurKnown := make([]bool, n)
	prevVal := make([]float64, n)
	for v := range prevVal {
		prevVal[v] = 1
	}
	// Seed every clean FUB — active or not — with its converged state.
	// Active clean FUBs start the relaxation from the old fixpoint;
	// inactive ones publish it as their boundary contribution.
	for f := 0; f < numFubs; f++ {
		p := fubPrior[f]
		if p == nil {
			continue
		}
		base := exts[f].start
		for i := range p.FwdIdx {
			v := base + i
			if idx := p.FwdIdx[i]; idx >= 0 && !a.fwdFixed[v] {
				fwdPrev[v], fwdPrevKnown[v] = sets[idx], true
			}
			if idx := p.BwdIdx[i]; idx >= 0 && !a.bwdFixed[v] {
				bwdPrev[v], bwdPrevKnown[v] = sets[idx], true
			}
			prevVal[v] = a.vertexValue(graph.VertexID(v), fwdPrev[v], bwdPrev[v], bwdPrevKnown[v], env)
		}
	}

	walked := make([]bool, numFubs)
	var ws walkStats
	converged := false
	iters := 0
	for iter := 1; iter <= a.Opts.Iterations; iter++ {
		iters = iter
		isp := sp.Child("iteration")
		isp.SetAttr("iter", iter)
		for f := 0; f < numFubs; f++ {
			if !active[f] {
				continue
			}
			walked[f] = true
			for _, v := range fwdTopo[f] {
				fwdCur[v] = a.fwdUnionLocal(v, int32(f), fwdCur, fwdPrev, fwdPrevKnown, &ws)
			}
			lt := bwdTopo[f]
			for i := len(lt) - 1; i >= 0; i-- {
				v := lt[i]
				bwdCur[v], bwdCurKnown[v] = a.bwdUnionLocal(v, int32(f), bwdCur, bwdCurKnown, bwdPrev, bwdPrevKnown, &ws)
			}
		}
		// Frontier expansion: an inactive FUB was seeded assuming its
		// boundary holds at the prior fixpoint. If the walk just moved a
		// value it consumes (a cross predecessor's forward set, a cross
		// successor's backward set), that assumption broke — pull it into
		// the active region. Set identity is a stricter test than the
		// Epsilon value delta: any numeric movement implies set movement.
		grew := false
		for _, e := range a.G.CrossEdges {
			ff, tf := a.G.Verts[e.From].Fub, a.G.Verts[e.To].Fub
			if active[ff] && !active[tf] {
				u := e.From
				if !a.fwdFixed[u] && (!fwdPrevKnown[u] || !fwdCur[u].Equal(fwdPrev[u])) {
					active[tf] = true
					grew = true
				}
			}
			if active[tf] && !active[ff] {
				w := e.To
				if !a.bwdFixed[w] && (bwdCurKnown[w] != bwdPrevKnown[w] || (bwdCurKnown[w] && !bwdCur[w].Equal(bwdPrev[w]))) {
					active[ff] = true
					grew = true
				}
			}
		}
		// Merge only what was walked this iteration: a FUB activated by
		// the frontier scan keeps its seed until its first walk.
		maxDelta := 0.0
		for f := 0; f < numFubs; f++ {
			if !walked[f] {
				continue
			}
			for v := exts[f].start; v < exts[f].end; v++ {
				fwdPrev[v], fwdPrevKnown[v] = fwdCur[v], true
				bwdPrev[v], bwdPrevKnown[v] = bwdCur[v], bwdCurKnown[v]
				val := a.vertexValue(graph.VertexID(v), fwdCur[v], bwdCur[v], bwdCurKnown[v], env)
				if d := math.Abs(val - prevVal[v]); d > maxDelta {
					maxDelta = d
				}
				prevVal[v] = val
			}
		}
		isp.SetAttr("max_delta", maxDelta)
		isp.End()
		reg.Histogram("core.iter_delta").Observe(maxDelta)
		if maxDelta <= a.Opts.Epsilon && !grew {
			converged = true
			break
		}
	}
	// Never-walked FUBs still hold their seed in the prev arrays (the
	// merge skipped them); surface it through the cur arrays so finish
	// assembles one uniform view.
	for f := 0; f < numFubs; f++ {
		if walked[f] {
			continue
		}
		for v := exts[f].start; v < exts[f].end; v++ {
			fwdCur[v] = fwdPrev[v]
			bwdCur[v], bwdCurKnown[v] = bwdPrev[v], bwdPrevKnown[v]
		}
	}
	// FUBs that were never walked still hold the prior fixpoint exactly;
	// under identical inputs their prior AVFs ARE the evaluation result,
	// so skip re-evaluating them vertex by vertex.
	var reuseAVF []float64
	var reuseOK []bool
	if prior.Inputs.Equal(in) {
		reuseAVF = make([]float64, n)
		reuseOK = make([]bool, n)
		for f := 0; f < numFubs; f++ {
			p := fubPrior[f]
			if p == nil || walked[f] {
				continue
			}
			base := exts[f].start
			for i, avf := range p.AVF {
				reuseAVF[base+i], reuseOK[base+i] = avf, true
			}
		}
	}
	fin := a.finishReuse(in, env, fwdCur, bwdCur, bwdCurKnown, reuseAVF, reuseOK)
	ws.record(reg)
	reg.Counter("core.iterations").Add(int64(iters))
	for f := range active {
		if active[f] {
			st.FubsActive++
		}
	}
	st.FubsReused = numFubs - st.FubsActive
	st.Iterations = iters
	st.Converged = converged
	finishUp(fin)
	return fin, st, nil
}

// remapSets translates the prior's deduplicated set table into uni's
// term-ID space. setOK[i] is false when set i references a term uni does
// not intern (or an ID outside the prior universe entirely, which a
// corrupt artifact could carry).
func remapSets(prior *PriorState, uni *pavf.Universe) (sets []pavf.Set, setOK []bool) {
	pLen := prior.Universe.Len()
	termMap := make([]pavf.TermID, pLen)
	termOK := make([]bool, pLen)
	if pLen > 0 {
		termMap[pavf.Top], termOK[pavf.Top] = pavf.Top, true
	}
	for t := 1; t < pLen; t++ {
		if id, ok := uni.Lookup(prior.Universe.Term(pavf.TermID(t))); ok {
			termMap[t], termOK[t] = id, true
		}
	}
	sets = make([]pavf.Set, len(prior.Sets))
	setOK = make([]bool, len(prior.Sets))
	mapped := make([]pavf.TermID, 0, 16)
	for i, s := range prior.Sets {
		ids := s.IDs()
		mapped = mapped[:0]
		ok := true
		for _, id := range ids {
			if id < 0 || int(id) >= pLen || !termOK[id] {
				ok = false
				break
			}
			mapped = append(mapped, termMap[id])
		}
		if ok {
			// Remapped IDs need re-sorting: the edited universe interns
			// terms in its own order.
			sets[i], setOK[i] = pavf.NewSet(mapped...), true
		}
	}
	return sets, setOK
}

// idxUsable reports whether every set reference in idx resolves to a
// successfully remapped set (-1, "unknown side", is always usable).
func idxUsable(idx []int32, setOK []bool) bool {
	for _, i := range idx {
		if i == -1 {
			continue
		}
		if i < 0 || int(i) >= len(setOK) || !setOK[i] {
			return false
		}
	}
	return true
}
