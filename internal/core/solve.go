package core

import (
	"context"
	"fmt"
	"math"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/pavf"
)

// walkStats accumulates hot-loop counters locally (no atomics in the
// per-vertex path) and publishes them to the registry once per phase.
type walkStats struct {
	fwdVerts  int64 // vertices visited by forward walks
	bwdVerts  int64 // vertices visited by backward walks
	unionOps  int64 // pairwise set unions performed
	topShorts int64 // unions short-circuited by a ⊤ collapse
}

func (w *walkStats) merge(o *walkStats) {
	w.fwdVerts += o.fwdVerts
	w.bwdVerts += o.bwdVerts
	w.unionOps += o.unionOps
	w.topShorts += o.topShorts
}

// record adds the accumulated tallies to the solver counters.
func (w *walkStats) record(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("core.fwd_vertices").Add(w.fwdVerts)
	reg.Counter("core.bwd_vertices").Add(w.bwdVerts)
	reg.Counter("core.union_ops").Add(w.unionOps)
	reg.Counter("core.top_shortcircuits").Add(w.topShorts)
}

// Result holds the outcome of one SART run: a closed-form AVF equation per
// bit vertex plus the environment built from the supplied measurements.
type Result struct {
	Analyzer *Analyzer
	Inputs   *Inputs
	Env      pavf.Env
	// Exprs holds the per-vertex closed-form equations (§5.1): re-run
	// Reevaluate with fresh Inputs to obtain new AVFs without walking.
	Exprs []pavf.Expr
	// AVF caches Exprs[v].Eval(Env).
	AVF []float64
	// Visited marks vertices reached by at least one walk.
	Visited []bool

	// Iterations is the number of relaxation iterations executed
	// (1 for the monolithic solver).
	Iterations int
	// Converged reports whether the partitioned relaxation met Epsilon
	// before the iteration bound (always true for monolithic).
	Converged bool
	// Trace records, per iteration, the average sequential-node pAVF per
	// FUB — the convergence diagnostic the paper plots (§6.1).
	Trace [][]float64
}

// Solve runs the monolithic solver: one forward fixpoint and one backward
// fixpoint over the whole design in topological order. Because union and
// MIN are monotone, this is the limit the paper's walk-based relaxation
// converges to; walks "can be done in any order" (§4.1.2).
func (a *Analyzer) Solve(in *Inputs) (*Result, error) {
	return a.SolveContext(context.Background(), in)
}

// SolveContext is Solve with request-scoped tracing: the "solve" span
// (and its env/fwd/bwd/finish phase children) nests under ctx's current
// span, so a cold solve triggered by an HTTP design upload appears in
// that request's trace. The context is trace plumbing only — the solve
// itself is not cancellable mid-fixpoint.
func (a *Analyzer) SolveContext(ctx context.Context, in *Inputs) (*Result, error) {
	sp := a.Opts.Obs.StartSpanContext(ctx, "solve")
	defer sp.End()
	esp := sp.Child("env")
	env, err := a.buildEnv(in)
	esp.End()
	if err != nil {
		return nil, err
	}
	n := a.G.NumVerts()
	sp.SetAttr("vertices", n)
	fwd := make([]pavf.Set, n)
	bwd := make([]pavf.Set, n)
	bwdKnown := make([]bool, n)
	var ws walkStats

	// Forward: topological order guarantees preds are final.
	fsp := sp.Child("fwd")
	for _, v := range a.topo {
		fwd[v] = a.fwdUnion(v, func(p graph.VertexID) (pavf.Set, bool) {
			return fwd[p], true
		}, &ws)
	}
	fsp.SetAttr("vertices", len(a.topo))
	fsp.End()
	// Backward: reverse order over non-bwd-fixed vertices.
	bsp := sp.Child("bwd")
	bwdTopo, err := a.G.TopoOrder(func(v graph.VertexID) bool { return a.bwdFixed[v] })
	if err != nil {
		bsp.End()
		return nil, fmt.Errorf("core: backward order: %w", err)
	}
	for i := len(bwdTopo) - 1; i >= 0; i-- {
		v := bwdTopo[i]
		bwd[v], bwdKnown[v] = a.bwdUnion(v, func(s graph.VertexID) (pavf.Set, bool) {
			return bwd[s], bwdKnown[s]
		}, &ws)
	}
	bsp.SetAttr("vertices", len(bwdTopo))
	bsp.End()
	nsp := sp.Child("finish")
	r := a.finish(in, env, fwd, bwd, bwdKnown)
	nsp.End()
	r.Iterations = 1
	r.Converged = true
	ws.record(a.Opts.Obs)
	a.Opts.Obs.Counter("core.solves").Inc()
	return r, nil
}

// fwdUnion computes the forward value of a non-fwd-fixed vertex from its
// predecessors' contributions; get returns a pred's computed set. Walk
// tallies accumulate into st.
func (a *Analyzer) fwdUnion(v graph.VertexID, get func(graph.VertexID) (pavf.Set, bool), st *walkStats) pavf.Set {
	st.fwdVerts++
	var acc pavf.Set
	for _, p := range a.G.Preds(v) {
		var contrib pavf.Set
		if a.fwdFixed[p] {
			contrib = a.fwdSrc[p]
		} else {
			set, known := get(p)
			if !known {
				contrib = pavf.TopSet()
			} else {
				contrib = set
			}
		}
		st.unionOps++
		acc = acc.Union(contrib)
		if acc.HasTop() {
			st.topShorts++
			return acc
		}
	}
	return acc
}

// bwdUnion computes the backward value of a non-bwd-fixed vertex from its
// successors' contributions. known is false when the vertex has no
// successors at all (a dangling node keeps its conservative 1.0). Walk
// tallies accumulate into st.
func (a *Analyzer) bwdUnion(v graph.VertexID, get func(graph.VertexID) (pavf.Set, bool), st *walkStats) (pavf.Set, bool) {
	st.bwdVerts++
	succs := a.G.Succs(v)
	if len(succs) == 0 {
		return pavf.Set{}, false
	}
	var acc pavf.Set
	for _, s := range succs {
		var contrib pavf.Set
		if a.bwdFixed[s] {
			contrib = a.bwdSrc[s]
		} else {
			set, known := get(s)
			if !known {
				contrib = pavf.TopSet()
			} else {
				contrib = set
			}
		}
		st.unionOps++
		acc = acc.Union(contrib)
		if acc.HasTop() {
			st.topShorts++
			return acc, true
		}
	}
	return acc, true
}

// finish assembles per-vertex closed forms and statistics.
func (a *Analyzer) finish(in *Inputs, env pavf.Env, fwd, bwd []pavf.Set, bwdKnown []bool) *Result {
	return a.finishReuse(in, env, fwd, bwd, bwdKnown, nil, nil)
}

// finishReuse is finish with an optional per-vertex AVF bypass: where
// reuseOK[v] holds, reuseAVF[v] is taken verbatim instead of evaluating
// the vertex's expression. The incremental path uses this for FUBs whose
// closed forms carried over unchanged under identical inputs — their
// prior values are already the evaluation result, bit for bit. Both
// slices nil means evaluate everything.
func (a *Analyzer) finishReuse(in *Inputs, env pavf.Env, fwd, bwd []pavf.Set, bwdKnown []bool, reuseAVF []float64, reuseOK []bool) *Result {
	n := a.G.NumVerts()
	r := &Result{
		Analyzer: a,
		Inputs:   in,
		Env:      env,
		Exprs:    make([]pavf.Expr, n),
		AVF:      make([]float64, n),
	}
	for v := 0; v < n; v++ {
		var x pavf.Expr
		switch a.roles[v] {
		case RoleNormal, RolePseudoIn:
			if a.fwdFixed[v] { // pseudo input
				x.Fwd, x.KnownFwd = a.fwdSrc[v], true
			} else {
				x.Fwd, x.KnownFwd = fwd[v], true
			}
			if a.bwdFixed[v] { // unconsumed output port
				x.Bwd, x.KnownBwd = a.bwdSrc[v], true
			} else {
				x.Bwd, x.KnownBwd = bwd[v], bwdKnown[v]
			}
		case RoleStructPort:
			x.Fwd, x.KnownFwd = a.fwdSrc[v], true
			x.Bwd, x.KnownBwd = a.fwdSrc[v], true
		case RoleControl:
			// Pinned to 100%: always architecturally required.
			x.Fwd, x.KnownFwd = a.fwdSrc[v], true
		case RoleLoop:
			x.Fwd, x.KnownFwd = a.fwdSrc[v], true
			x.Bwd, x.KnownBwd = a.fwdSrc[v], true
		case RoleDebug:
			x.Fwd, x.KnownFwd = pavf.Set{}, true
			x.Bwd, x.KnownBwd = pavf.Set{}, true
		case RoleConst:
			x.Fwd, x.KnownFwd = pavf.TopSet(), true
		}
		r.Exprs[v] = x
		if reuseOK != nil && reuseOK[v] {
			r.AVF[v] = reuseAVF[v]
		} else {
			r.AVF[v] = x.Eval(env)
		}
	}
	r.Visited = a.visited()
	return r
}

// visited marks vertices reached by a forward walk from any source or a
// backward walk from any sink — the paper's ">98% of all RTL nodes"
// coverage metric. The bitmap depends only on graph structure, so it is
// computed once per analyzer and the same slice is attached to every
// Result — holders must treat Result.Visited as read-only.
func (a *Analyzer) visited() []bool {
	a.visitedOnce.Do(func() {
		a.visitedBits = a.buildVisited()
	})
	return a.visitedBits
}

func (a *Analyzer) buildVisited() []bool {
	n := a.G.NumVerts()
	vis := make([]bool, n)
	// Forward BFS from forward-fixed vertices with non-empty sources.
	queue := make([]graph.VertexID, 0, n)
	for v := 0; v < n; v++ {
		if a.fwdFixed[v] && !a.fwdSrc[v].IsEmpty() && a.roles[v] != RoleConst {
			queue = append(queue, graph.VertexID(v))
		}
	}
	seen := make([]bool, n)
	for _, v := range queue {
		seen[v] = true
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		vis[v] = true
		for _, s := range a.G.Succs(v) {
			if !seen[s] && !a.fwdFixed[s] {
				seen[s] = true
				queue = append(queue, s)
			} else if a.fwdFixed[s] {
				vis[s] = true
			}
		}
	}
	// Backward BFS from backward-fixed vertices with non-empty sinks.
	queue = queue[:0]
	seen = make([]bool, n)
	for v := 0; v < n; v++ {
		if a.bwdFixed[v] && !a.bwdSrc[v].IsEmpty() {
			queue = append(queue, graph.VertexID(v))
			seen[v] = true
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		vis[v] = true
		for _, p := range a.G.Preds(v) {
			if !seen[p] && !a.bwdFixed[p] {
				seen[p] = true
				queue = append(queue, p)
			} else if a.bwdFixed[p] {
				vis[p] = true
			}
		}
	}
	return vis
}

// Reevaluate applies fresh measurements to the closed-form equations
// without re-walking the design (§5.1: "any subsequent sequential AVF
// computation ... simply needs to generate new pAVFs from the ACE model
// then plug those values into the closed form equations").
//
// It rejects inputs that were not measured for the solved design: a table
// naming structure ports this design does not have would otherwise be
// silently dropped while the design's own ports fell back to defaults,
// producing AVFs for the wrong workload binding.
func (r *Result) Reevaluate(in *Inputs) error {
	if n := r.Analyzer.G.NumVerts(); len(r.Exprs) != n || len(r.AVF) != n {
		return fmt.Errorf("core: result holds %d equations and %d AVFs but analyzer design %q has %d vertices (result/analyzer mismatch)",
			len(r.Exprs), len(r.AVF), r.Analyzer.G.Design.Name, n)
	}
	if err := r.Analyzer.CheckInputs(in); err != nil {
		return err
	}
	env, err := r.Analyzer.buildEnv(in)
	if err != nil {
		return err
	}
	r.Inputs = in
	r.Env = env
	for v := range r.Exprs {
		r.AVF[v] = r.Exprs[v].Eval(env)
	}
	return nil
}

// Equation renders vertex v's closed-form AVF equation.
func (r *Result) Equation(v graph.VertexID) string {
	return r.Exprs[v].Format(r.Analyzer.universe)
}

// VisitedFraction returns the share of analyzable vertices reached by a
// walk (debug-stripped vertices are excluded from the denominator).
func (r *Result) VisitedFraction() float64 {
	total, vis := 0, 0
	for v := range r.Visited {
		if r.Analyzer.roles[v] == RoleDebug {
			continue
		}
		total++
		if r.Visited[v] {
			vis++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(vis) / float64(total)
}

// IsSequentialBit reports whether vertex v is a sequential (flop/latch)
// bit for statistics purposes. Structure storage is excluded: structures
// are ACE-modeled, not sequentials.
func (r *Result) IsSequentialBit(v graph.VertexID) bool {
	vx := &r.Analyzer.G.Verts[v]
	return vx.Node.Kind == netlist.KindSeq && r.Analyzer.roles[v] != RoleDebug
}

// FubStat summarizes one FUB after resolution — one bar of Figure 9.
type FubStat struct {
	Fub string
	// SeqBits / NodeBits count sequential and total analyzable bits.
	SeqBits  int
	NodeBits int
	// AvgSeqAVF and AvgNodeAVF are unweighted means over those bits.
	AvgSeqAVF  float64
	AvgNodeAVF float64
	// LoopSeqBits counts loop-boundary sequential bits (§4.3 reports
	// 2–3% of sequentials in loops).
	LoopSeqBits int
	// CtrlBits counts identified control-register bits.
	CtrlBits int
}

// FubStats aggregates per-FUB statistics in FUB declaration order.
func (r *Result) FubStats() []FubStat {
	a := r.Analyzer
	out := make([]FubStat, len(a.G.FubNames))
	for i, name := range a.G.FubNames {
		out[i].Fub = name
	}
	for v := 0; v < a.G.NumVerts(); v++ {
		role := a.roles[v]
		if role == RoleDebug || role == RoleConst {
			continue
		}
		vx := &a.G.Verts[v]
		st := &out[vx.Fub]
		avf := r.AVF[v]
		// Node stats cover combinational and sequential bits alike
		// (structure ports are wires, counted as nodes).
		st.NodeBits++
		st.AvgNodeAVF += avf
		if vx.Node.Kind == netlist.KindSeq {
			st.SeqBits++
			st.AvgSeqAVF += avf
			if role == RoleLoop {
				st.LoopSeqBits++
			}
			if role == RoleControl {
				st.CtrlBits++
			}
		}
	}
	for i := range out {
		if out[i].SeqBits > 0 {
			out[i].AvgSeqAVF /= float64(out[i].SeqBits)
		}
		if out[i].NodeBits > 0 {
			out[i].AvgNodeAVF /= float64(out[i].NodeBits)
		}
	}
	return out
}

// Summary aggregates design-wide statistics.
type Summary struct {
	SeqBits         int
	NodeBits        int
	LoopSeqBits     int
	CtrlBits        int
	WeightedSeqAVF  float64 // weighted by per-FUB sequential bit count
	WeightedNodeAVF float64
	VisitedFraction float64
	LoopSeqFraction float64
	Iterations      int
	Converged       bool
}

// Summarize computes the design-wide weighted averages the paper reports
// (weighted "to account for the actual number of sequentials in each FUB").
func (r *Result) Summarize() Summary {
	var s Summary
	var seqSum, nodeSum float64
	for _, fs := range r.FubStats() {
		s.SeqBits += fs.SeqBits
		s.NodeBits += fs.NodeBits
		s.LoopSeqBits += fs.LoopSeqBits
		s.CtrlBits += fs.CtrlBits
		seqSum += fs.AvgSeqAVF * float64(fs.SeqBits)
		nodeSum += fs.AvgNodeAVF * float64(fs.NodeBits)
	}
	if s.SeqBits > 0 {
		s.WeightedSeqAVF = seqSum / float64(s.SeqBits)
	}
	if s.NodeBits > 0 {
		s.WeightedNodeAVF = nodeSum / float64(s.NodeBits)
	}
	if s.SeqBits > 0 {
		s.LoopSeqFraction = float64(s.LoopSeqBits) / float64(s.SeqBits)
	}
	s.VisitedFraction = r.VisitedFraction()
	s.Iterations = r.Iterations
	s.Converged = r.Converged
	return s
}

// SeqAVFByNode returns the average AVF per sequential node (averaging the
// node's bits), keyed by "fub/node".
func (r *Result) SeqAVFByNode() map[string]float64 {
	a := r.Analyzer
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for v := 0; v < a.G.NumVerts(); v++ {
		if !r.IsSequentialBit(graph.VertexID(v)) {
			continue
		}
		vx := &a.G.Verts[v]
		key := a.G.FubNames[vx.Fub] + "/" + vx.Node.Name
		sums[key] += r.AVF[v]
		counts[key]++
	}
	for k := range sums {
		sums[k] /= float64(counts[k])
	}
	return sums
}

// MaxAbsDiff returns the largest absolute per-vertex AVF difference
// between two results over the same analyzer (used to verify that the
// partitioned relaxation converges to the monolithic fixpoint). Results
// with differing vertex counts are incomparable: MaxAbsDiff returns NaN
// instead of indexing out of range. Callers comparing against a tolerance
// must check math.IsNaN explicitly — any comparison with NaN is false.
func MaxAbsDiff(a, b *Result) float64 {
	if len(a.AVF) != len(b.AVF) {
		return math.NaN()
	}
	max := 0.0
	for v := range a.AVF {
		d := math.Abs(a.AVF[v] - b.AVF[v])
		if d > max {
			max = d
		}
	}
	return max
}
