package core

import (
	"encoding/json"
	"io"
	"sort"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
)

// ExportNode is the serialized form of one sequential node's result.
type ExportNode struct {
	Node     string  `json:"node"`
	Bits     int     `json:"bits"`
	Role     string  `json:"role"`
	AVF      float64 `json:"avf"`
	SDC      float64 `json:"sdc"`
	DUE      float64 `json:"due"`
	DCE      float64 `json:"dce"`
	Equation string  `json:"equation,omitempty"`
}

// ExportFub is the serialized per-FUB summary.
type ExportFub struct {
	Fub        string  `json:"fub"`
	SeqBits    int     `json:"seqBits"`
	NodeBits   int     `json:"nodeBits"`
	AvgSeqAVF  float64 `json:"avgSeqAVF"`
	AvgNodeAVF float64 `json:"avgNodeAVF"`
	LoopBits   int     `json:"loopBits"`
	CtrlBits   int     `json:"ctrlBits"`
}

// Export is the machine-readable form of a SART run, for downstream
// tooling (FIT rollups, mitigation planning, dashboards).
type Export struct {
	Design          string       `json:"design"`
	SeqBits         int          `json:"seqBits"`
	WeightedSeqAVF  float64      `json:"weightedSeqAVF"`
	WeightedNodeAVF float64      `json:"weightedNodeAVF"`
	VisitedFraction float64      `json:"visitedFraction"`
	LoopSeqBits     int          `json:"loopSeqBits"`
	CtrlBits        int          `json:"ctrlBits"`
	Iterations      int          `json:"iterations"`
	Converged       bool         `json:"converged"`
	Fubs            []ExportFub  `json:"fubs"`
	Nodes           []ExportNode `json:"nodes"`
}

// Export assembles the serializable result. When withEquations is set,
// each node carries its closed-form AVF equation (first bit's form; all
// bits of a node share structure in practice).
func (r *Result) Export(withEquations bool) *Export {
	a := r.Analyzer
	s := r.Summarize()
	out := &Export{
		Design:          a.G.Design.Name,
		SeqBits:         s.SeqBits,
		WeightedSeqAVF:  s.WeightedSeqAVF,
		WeightedNodeAVF: s.WeightedNodeAVF,
		VisitedFraction: s.VisitedFraction,
		LoopSeqBits:     s.LoopSeqBits,
		CtrlBits:        s.CtrlBits,
		Iterations:      s.Iterations,
		Converged:       s.Converged,
	}
	for _, fs := range r.FubStats() {
		out.Fubs = append(out.Fubs, ExportFub{
			Fub: fs.Fub, SeqBits: fs.SeqBits, NodeBits: fs.NodeBits,
			AvgSeqAVF: fs.AvgSeqAVF, AvgNodeAVF: fs.AvgNodeAVF,
			LoopBits: fs.LoopSeqBits, CtrlBits: fs.CtrlBits,
		})
	}
	// Per-node aggregation (bits of one node averaged).
	type acc struct {
		first graph.VertexID
		en    ExportNode
	}
	byNode := make(map[string]*acc)
	var order []string
	for v := 0; v < a.G.NumVerts(); v++ {
		id := graph.VertexID(v)
		vx := &a.G.Verts[v]
		if vx.Node.Kind != netlist.KindSeq || a.roles[v] == RoleDebug {
			continue
		}
		key := a.G.FubNames[vx.Fub] + "/" + vx.Node.Name
		e, ok := byNode[key]
		if !ok {
			e = &acc{first: id, en: ExportNode{Node: key, Role: a.roles[v].String()}}
			byNode[key] = e
			order = append(order, key)
		}
		d := r.Decompose(id)
		e.en.Bits++
		e.en.AVF += r.AVF[v]
		e.en.SDC += d.SDC
		e.en.DUE += d.DUE
		e.en.DCE += d.DCE
	}
	sort.Strings(order)
	for _, key := range order {
		e := byNode[key]
		n := float64(e.en.Bits)
		e.en.AVF /= n
		e.en.SDC /= n
		e.en.DUE /= n
		e.en.DCE /= n
		if withEquations {
			e.en.Equation = r.Equation(e.first)
		}
		out.Nodes = append(out.Nodes, e.en)
	}
	return out
}

// WriteJSON serializes the export with indentation.
func (r *Result) WriteJSON(w io.Writer, withEquations bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export(withEquations))
}
