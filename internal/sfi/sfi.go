// Package sfi implements statistical fault injection into RTL — the
// brute-force baseline of §3.1. Two copies of the netlist simulation run
// side by side; a random sequential bit is flipped in one copy at a random
// cycle; the runs are compared at the observation points (program outputs,
// for SDC) for a bounded window.
//
// Classification follows the paper:
//
//   - Error:   the observation streams diverge within the window;
//   - Unknown: the streams match but corrupted state is still resident at
//     the end of the window (the fault may yet propagate);
//   - Masked:  the streams match and the architectural state reconverged.
//
// Sequential AVF is Equation 2: (#Errors + #Unknown) / #Injected.
package sfi

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"seqavf/internal/obs"
	"seqavf/internal/rtlsim"
	"seqavf/internal/stats"
)

// Observation names the netlist ports SFI compares: a valid/data pair
// (the program output port) plus a halted flag.
type Observation struct {
	Fub    string
	Valid  string
	Data   string
	Halted string
}

// Config tunes a campaign.
type Config struct {
	// InjectionsPerBit is the number of random injection cycles tried
	// for every sequential bit (statistically significant per-node AVFs
	// need several).
	InjectionsPerBit int
	// Window is the number of cycles a fault may propagate before the
	// run is classified (the paper quotes 10,000-50,000 for real RTL;
	// tinycore programs are far shorter).
	Window int
	// MaxCycles bounds the golden run.
	MaxCycles int
	// SnapshotEvery controls the golden checkpoint interval used to
	// fast-forward fault runs.
	SnapshotEvery int
	Seed          uint64
	// SiteFilter, when non-nil, restricts injection to matching
	// sequential nodes. The paper's §4.3 "solution 2" uses exactly this:
	// characterize only the loop nodes with targeted RTL simulation
	// instead of a full-design campaign.
	SiteFilter func(rtlsim.SeqSite) bool
	// Workers parallelizes the campaign across sites (fault injection is
	// embarrassingly parallel — the reason real campaigns run on farms).
	// Results are identical for any worker count: every site draws its
	// injection cycles from its own name-derived random stream.
	Workers int
	// Exhaustive injects into EVERY (bit, cycle) pair instead of sampling
	// — the paper's "complete coverage of the solution space"
	// (#sequentials x #cycles simulations, §3.1). Only feasible for small
	// designs and short programs; InjectionsPerBit is ignored.
	Exhaustive bool
	// Obs receives campaign telemetry: golden/inject spans, injection and
	// outcome counters, simulated-cycle and node-eval tallies, and
	// sims-per-second gauges. nil disables it.
	Obs *obs.Registry
}

// DefaultConfig returns a small but meaningful campaign.
func DefaultConfig() Config {
	return Config{
		InjectionsPerBit: 6,
		Window:           2000,
		MaxCycles:        20000,
		SnapshotEvery:    64,
		Seed:             1,
	}
}

// NodeResult aggregates injections into one sequential node.
type NodeResult struct {
	Fub, Node  string
	Width      int
	Injections int
	Errors     int
	Unknown    int
	Masked     int
}

// AVF applies Equation 2 to the node's tallies.
func (n *NodeResult) AVF() float64 {
	if n.Injections == 0 {
		return 0
	}
	return float64(n.Errors+n.Unknown) / float64(n.Injections)
}

// CI returns the 95% binomial confidence interval on the node AVF.
func (n *NodeResult) CI() stats.Interval {
	return stats.BinomialCI(n.Errors+n.Unknown, max(n.Injections, 1))
}

// Result is a completed campaign.
type Result struct {
	Nodes []NodeResult
	// GoldenCycles is the golden run length (halt + drain, or MaxCycles).
	GoldenCycles uint64
	// SimulatedCycles totals the cycles executed across all fault runs —
	// the paper's cost argument in numbers.
	SimulatedCycles uint64

	Injections int
	Errors     int
	Unknown    int
	Masked     int
}

// AVF is the campaign-wide Equation 2 value.
func (r *Result) AVF() float64 {
	if r.Injections == 0 {
		return 0
	}
	return float64(r.Errors+r.Unknown) / float64(r.Injections)
}

// NodeAVF returns the per-node AVF map keyed "fub/node".
func (r *Result) NodeAVF() map[string]float64 {
	out := make(map[string]float64, len(r.Nodes))
	for i := range r.Nodes {
		n := &r.Nodes[i]
		out[n.Fub+"/"+n.Node] = n.AVF()
	}
	return out
}

type obsEvent struct {
	cycle uint64
	val   uint64
}

// golden captures the reference run: observation events, per-cycle state
// hashes, and periodic snapshots.
type golden struct {
	events []obsEvent
	hashes []uint64 // hash after settle at each cycle index
	snaps  []*rtlsim.Sim
	snapAt []uint64
	end    uint64 // first cycle index NOT simulated
}

func runGolden(sim *rtlsim.Sim, obs Observation, cfg Config) (*golden, error) {
	g := &golden{}
	cur := sim.Clone()
	haltDrain := -1
	for c := uint64(0); c < uint64(cfg.MaxCycles); c++ {
		if c%uint64(cfg.SnapshotEvery) == 0 {
			g.snaps = append(g.snaps, cur.Clone())
			g.snapAt = append(g.snapAt, c)
		}
		g.hashes = append(g.hashes, cur.Hash())
		if v, err := cur.Value(obs.Fub, obs.Valid); err != nil {
			return nil, err
		} else if v&1 == 1 {
			data, _ := cur.Value(obs.Fub, obs.Data)
			g.events = append(g.events, obsEvent{cycle: c, val: data})
		}
		if h, _ := cur.Value(obs.Fub, obs.Halted); h&1 == 1 {
			if haltDrain < 0 {
				haltDrain = 3 // a few cycles of post-halt settling
			}
			haltDrain--
			if haltDrain <= 0 {
				g.end = c + 1
				return g, nil
			}
		}
		cur.Step()
	}
	g.end = uint64(cfg.MaxCycles)
	return g, nil
}

// eventsIn returns golden events with cycle >= from.
func (g *golden) eventsIn(from uint64) []obsEvent {
	i := sort.Search(len(g.events), func(i int) bool { return g.events[i].cycle >= from })
	return g.events[i:]
}

// Run executes a campaign against the machine state in sim (typically a
// freshly constructed design with its program loaded, at cycle 0).
func Run(sim *rtlsim.Sim, obsPoints Observation, cfg Config) (*Result, error) {
	if (cfg.InjectionsPerBit <= 0 && !cfg.Exhaustive) || cfg.MaxCycles <= 0 || cfg.SnapshotEvery <= 0 {
		return nil, fmt.Errorf("sfi: invalid config %+v", cfg)
	}
	reg := cfg.Obs
	sp := reg.StartSpan("sfi.campaign")
	defer sp.End()
	start := time.Now()
	gsp := sp.Child("golden")
	g, err := runGolden(sim, obsPoints, cfg)
	if err != nil {
		gsp.End()
		return nil, err
	}
	gsp.SetAttr("cycles", g.end)
	gsp.End()
	if g.end < 2 {
		return nil, fmt.Errorf("sfi: golden run too short (%d cycles)", g.end)
	}
	res := &Result{GoldenCycles: g.end}

	var sites []rtlsim.SeqSite
	for _, site := range sim.SeqSites() {
		if cfg.SiteFilter == nil || cfg.SiteFilter(site) {
			sites = append(sites, site)
		}
	}
	results := make([]NodeResult, len(sites))
	cycleCounts := make([]uint64, len(sites))
	errs := make([]error, len(sites))
	isp := sp.Child("inject")
	isp.SetAttr("sites", len(sites))
	isp.SetAttr("workers", cfg.Workers)

	runSite := func(si int) {
		site := sites[si]
		// Name-derived stream: identical draws regardless of worker
		// count or site visitation order.
		rng := stats.New(cfg.Seed ^ nameHash(site.Fub+"/"+site.Node))
		nr := NodeResult{Fub: site.Fub, Node: site.Node, Width: site.Width}
		inject := func(bit int, c uint64) bool {
			outcome, cycles, err := injectOne(g, obsPoints, cfg, site, bit, c)
			if err != nil {
				errs[si] = err
				return false
			}
			cycleCounts[si] += cycles
			nr.Injections++
			switch outcome {
			case outcomeError:
				nr.Errors++
			case outcomeUnknown:
				nr.Unknown++
			default:
				nr.Masked++
			}
			return true
		}
		for bit := 0; bit < site.Width; bit++ {
			if cfg.Exhaustive {
				for c := uint64(0); c < g.end-1; c++ {
					if !inject(bit, c) {
						return
					}
				}
			} else {
				for k := 0; k < cfg.InjectionsPerBit; k++ {
					c := uint64(rng.Intn(int(g.end - 1)))
					if !inject(bit, c) {
						return
					}
				}
			}
		}
		results[si] = nr
	}
	if cfg.Workers > 1 {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range work {
					runSite(si)
				}
			}()
		}
		for si := range sites {
			work <- si
		}
		close(work)
		wg.Wait()
	} else {
		for si := range sites {
			runSite(si)
		}
	}
	isp.End()
	for si := range sites {
		if errs[si] != nil {
			return nil, errs[si]
		}
		nr := results[si]
		res.SimulatedCycles += cycleCounts[si]
		res.Injections += nr.Injections
		res.Errors += nr.Errors
		res.Unknown += nr.Unknown
		res.Masked += nr.Masked
		res.Nodes = append(res.Nodes, nr)
	}
	if reg != nil {
		reg.Counter("sfi.campaigns").Inc()
		reg.Counter("sfi.injections").Add(int64(res.Injections))
		reg.Counter("sfi.errors").Add(int64(res.Errors))
		reg.Counter("sfi.unknown").Add(int64(res.Unknown))
		reg.Counter("sfi.masked").Add(int64(res.Masked))
		reg.Counter("sfi.sim_cycles").Add(int64(res.SimulatedCycles))
		reg.Counter("rtlsim.cycles").Add(int64(res.SimulatedCycles + res.GoldenCycles))
		evals := (res.SimulatedCycles + res.GoldenCycles) * uint64(sim.NumEvalNodes())
		reg.Counter("rtlsim.node_evals").Add(int64(evals))
		if elapsed := time.Since(start).Seconds(); elapsed > 0 {
			reg.Gauge("sfi.sims_per_sec").Set(float64(res.Injections) / elapsed)
			reg.Gauge("sfi.cycles_per_sec").Set(float64(res.SimulatedCycles) / elapsed)
		}
		sp.SetAttr("injections", res.Injections)
		sp.SetAttr("avf", res.AVF())
	}
	return res, nil
}

// nameHash is a 64-bit FNV-1a over the site name.
func nameHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

type outcome uint8

const (
	outcomeMasked outcome = iota
	outcomeError
	outcomeUnknown
)

// injectOne runs a single fault experiment: flip (site,bit) at cycle c and
// compare against the golden run until the window closes.
func injectOne(g *golden, obs Observation, cfg Config, site rtlsim.SeqSite, bit int, c uint64) (outcome, uint64, error) {
	// Fast-forward from the nearest snapshot at or before c.
	si := sort.Search(len(g.snapAt), func(i int) bool { return g.snapAt[i] > c }) - 1
	m := g.snaps[si].Clone()
	cycles := uint64(0)
	for cur := g.snapAt[si]; cur < c; cur++ {
		m.Step()
		cycles++
	}
	if err := m.FlipBit(site.Fub, site.Node, bit); err != nil {
		return 0, cycles, err
	}
	end := c + uint64(cfg.Window)
	if end > g.end-1 {
		end = g.end - 1
	}
	want := g.eventsIn(c)
	wi := 0
	for cur := c; ; cur++ {
		if v, _ := m.Value(obs.Fub, obs.Valid); v&1 == 1 {
			data, _ := m.Value(obs.Fub, obs.Data)
			if wi >= len(want) || want[wi].cycle != cur || want[wi].val != data {
				return outcomeError, cycles, nil
			}
			wi++
		} else if wi < len(want) && want[wi].cycle == cur {
			return outcomeError, cycles, nil // golden emitted, fault run silent
		}
		if cur == end {
			break
		}
		m.Step()
		cycles++
	}
	// Window closed without divergence: is corrupted state resident?
	if m.Hash() != g.hashes[end] {
		return outcomeUnknown, cycles, nil
	}
	return outcomeMasked, cycles, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
