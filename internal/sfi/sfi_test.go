package sfi

import (
	"testing"

	"seqavf/internal/isa"
	"seqavf/internal/tinycore"
	"seqavf/internal/workload"
)

var tinyObs = Observation{
	Fub:    tinycore.FubName,
	Valid:  "out_valid",
	Data:   "out_data",
	Halted: "halted_o",
}

func smallCampaign(t *testing.T, p *isa.Program, cfg Config) *Result {
	t.Helper()
	m, err := tinycore.New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m.Sim, tinyObs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCampaignBasics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectionsPerBit = 2
	cfg.Window = 500
	res := smallCampaign(t, workload.MD5Like(15), cfg)

	if res.Injections != 195*2 { // 195 sequential bits
		t.Fatalf("injections = %d, want 390", res.Injections)
	}
	if res.Errors+res.Unknown+res.Masked != res.Injections {
		t.Fatal("tallies do not sum")
	}
	if res.Errors == 0 {
		t.Fatal("no faults propagated to outputs — campaign is vacuous")
	}
	if res.Masked == 0 {
		t.Fatal("no faults masked — suspicious for un-ACE bits")
	}
	avf := res.AVF()
	if avf <= 0 || avf >= 1 {
		t.Fatalf("overall AVF = %v", avf)
	}
	if res.GoldenCycles == 0 || res.SimulatedCycles < res.GoldenCycles {
		t.Fatalf("cycle accounting: golden=%d total=%d", res.GoldenCycles, res.SimulatedCycles)
	}
}

func TestPerNodeResults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectionsPerBit = 2
	cfg.Window = 400
	res := smallCampaign(t, workload.MD5Like(10), cfg)

	byNode := res.NodeAVF()
	// The PC is catastrophically vulnerable: a flipped PC bit derails
	// fetch. Expect a high AVF.
	pc, ok := byNode[tinycore.FubName+"/pc"]
	if !ok {
		t.Fatalf("pc missing: %v", byNode)
	}
	if pc < 0.2 {
		t.Fatalf("pc AVF = %v, expected substantial", pc)
	}
	for name, avf := range byNode {
		if avf < 0 || avf > 1 {
			t.Fatalf("%s AVF = %v", name, avf)
		}
	}
	// Confidence intervals behave.
	for i := range res.Nodes {
		ci := res.Nodes[i].CI()
		if !ci.Contains(res.Nodes[i].AVF()) {
			t.Fatalf("%s: CI %+v excludes point %v", res.Nodes[i].Node, ci, res.Nodes[i].AVF())
		}
	}
}

func TestDeterministicCampaign(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectionsPerBit = 1
	cfg.Window = 200
	a := smallCampaign(t, workload.MD5Like(8), cfg)
	b := smallCampaign(t, workload.MD5Like(8), cfg)
	if a.Errors != b.Errors || a.Unknown != b.Unknown || a.Masked != b.Masked {
		t.Fatalf("campaign not deterministic: %+v vs %+v",
			[3]int{a.Errors, a.Unknown, a.Masked}, [3]int{b.Errors, b.Unknown, b.Masked})
	}
}

func TestWindowTruncationProducesUnknowns(t *testing.T) {
	// A tiny window cannot let faults propagate to the (late) output, so
	// resident corruption classifies as unknown.
	cfg := DefaultConfig()
	cfg.InjectionsPerBit = 2
	cfg.Window = 2
	res := smallCampaign(t, workload.MD5Like(20), cfg)
	if res.Unknown == 0 {
		t.Fatal("expected unknowns with a 2-cycle window")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	m, err := tinycore.New(workload.MD5Like(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m.Sim, tinyObs, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestEquation2Monotonicity: a longer observation window can only convert
// unknowns into errors or masks, never shrink errors.
func TestWindowGrowthRefinesUnknowns(t *testing.T) {
	base := DefaultConfig()
	base.InjectionsPerBit = 2
	short := base
	short.Window = 30
	long := base
	long.Window = 3000
	a := smallCampaign(t, workload.MD5Like(12), short)
	b := smallCampaign(t, workload.MD5Like(12), long)
	if b.Unknown > a.Unknown {
		t.Fatalf("longer window increased unknowns: %d -> %d", a.Unknown, b.Unknown)
	}
}

func TestParallelCampaignMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectionsPerBit = 1
	cfg.Window = 200
	serial := smallCampaign(t, workload.MD5Like(8), cfg)
	cfg.Workers = 4
	parallel := smallCampaign(t, workload.MD5Like(8), cfg)
	if serial.Injections != parallel.Injections ||
		serial.Errors != parallel.Errors ||
		serial.Unknown != parallel.Unknown ||
		serial.Masked != parallel.Masked {
		t.Fatalf("parallel campaign diverged: %+v vs %+v",
			[4]int{serial.Injections, serial.Errors, serial.Unknown, serial.Masked},
			[4]int{parallel.Injections, parallel.Errors, parallel.Unknown, parallel.Masked})
	}
	for i := range serial.Nodes {
		a, b := serial.Nodes[i], parallel.Nodes[i]
		if a != b {
			t.Fatalf("node %s differs: %+v vs %+v", a.Node, a, b)
		}
	}
}
