package seqavf_test

import (
	"strings"
	"testing"

	"seqavf"
	"seqavf/internal/netlist"
	"seqavf/internal/rtlsim"
	"seqavf/internal/tinycore"
)

// TestFacadeEndToEnd drives the whole public pipeline the way a
// downstream user would: netlist -> graph -> ACE measurement -> SART ->
// closed forms, plus the textual round trip.
func TestFacadeEndToEnd(t *testing.T) {
	d := seqavf.NewDesign("facade")
	d.AddStructure("IQ", 8, 16)
	d.AddStructure("ROB", 8, 16)
	m := d.AddModule("pipe")
	b := seqavf.Build(m)
	out := b.Pipe("stage", 16, 3, b.SRead("iq_rd", 16, "IQ", "issue"))
	b.SWrite("rob_wr", "ROB", "alloc", out)
	d.AddFub("PIPE", "pipe")

	// Text round trip through the public API.
	var sb strings.Builder
	if err := seqavf.WriteNetlist(&sb, d); err != nil {
		t.Fatal(err)
	}
	d2, err := seqavf.ParseNetlist(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	fd, err := seqavf.Flatten(d2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := seqavf.BuildGraph(fd)
	if err != nil {
		t.Fatal(err)
	}
	a, err := seqavf.NewAnalyzer(g, seqavf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Port AVFs measured by the bundled performance model.
	perf, err := seqavf.RunPerfModel(seqavf.LatticeWorkload(6), seqavf.DefaultPerfConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := seqavf.NewInputs()
	in.ReadPorts[seqavf.StructPort{Struct: "IQ", Port: "issue"}] = perf.Report.ReadPorts["IQ.issue"]
	in.WritePorts[seqavf.StructPort{Struct: "ROB", Port: "alloc"}] = perf.Report.WritePorts["IQ.alloc"]

	res, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	byNode := res.SeqAVFByNode()
	if len(byNode) != 3 {
		t.Fatalf("nodes = %v", byNode)
	}
	for n, avf := range byNode {
		if avf <= 0 || avf > 1 {
			t.Fatalf("%s AVF = %v", n, avf)
		}
	}
	sum := res.Summarize()
	if sum.SeqBits != 48 || sum.VisitedFraction != 1 {
		t.Fatalf("summary: %+v", sum)
	}
}

// TestFacadeSFI runs the public fault-injection path on the netlist CPU.
func TestFacadeSFI(t *testing.T) {
	p := seqavf.MD5Workload(8)
	mach, err := tinycore.New(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := seqavf.DefaultSFIConfig()
	cfg.InjectionsPerBit = 1
	cfg.Window = 100
	res, err := seqavf.RunSFI(mach.Sim, seqavf.SFIObservation{
		Fub: tinycore.FubName, Valid: "out_valid", Data: "out_data", Halted: "halted_o",
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections == 0 {
		t.Fatal("no injections")
	}
}

// TestFacadeSim exercises NewSim with behavioral structures.
func TestFacadeSim(t *testing.T) {
	d := seqavf.NewDesign("sim")
	d.AddStructure("RF", 4, 8)
	m := d.AddModule("m")
	b := seqavf.Build(m)
	b.Out("q", 8, b.SRead("rd", 8, "RF", "r0"))
	d.AddFub("F", "m")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	fd, err := seqavf.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	rf := rtlsim.NewRegArray(4, 8, false)
	rf.Set(0, 42)
	sim, err := seqavf.NewSim(fd, map[string]rtlsim.StructSim{"RF": rf})
	if err != nil {
		t.Fatal(err)
	}
	sim.Settle()
	v, err := sim.Value("F", "q")
	if err != nil || v != 42 {
		t.Fatalf("q = %d, err %v", v, err)
	}
	// Type aliases interoperate with internal packages.
	var _ *netlist.Design = d
}
