// Loopsweep reproduces the paper's Figure 8 study on a generated
// XeonLike design: sweep the static pAVF injected at loop-boundary nodes
// and plot (as text) the design-wide average sequential AVF.
//
// The paper's finding — reproduced here — is that even a fully
// conservative 100% loop pAVF does not saturate the sequential AVFs,
// because the MIN against measured port values absorbs the injected
// conservatism; the curve's heel guided their choice of 0.3.
//
//	go run ./examples/loopsweep [-seed 2015]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"seqavf/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 2027, "design seed")
	flag.Parse()

	cfg := experiments.DefaultSetup()
	cfg.Seed = *seed
	cfg.SuiteSize = 4
	env, err := experiments.Setup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := experiments.Figure8(env, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loop-boundary pAVF sweep (loop bits: %.1f%% of sequentials)\n\n",
		100*r.LoopSeqFraction)
	lo, hi := r.Points[0].WeightedSeqAVF, r.Points[len(r.Points)-1].WeightedSeqAVF
	for _, p := range r.Points {
		frac := (p.WeightedSeqAVF - lo) / (hi - lo)
		bar := strings.Repeat("#", 8+int(40*frac))
		fmt.Printf("%4.2f | %-48s %.4f\n", p.LoopPAVF, bar, p.WeightedSeqAVF)
	}
	fmt.Printf("\nfull sweep moves the average by only %.1f%% relative — the\n",
		100*(hi-lo)/lo)
	fmt.Println("MIN rules keep injected loop conservatism from saturating the design.")
}
