// Hardening demonstrates the deployment decision the paper's introduction
// motivates: given per-bit sequential AVFs from SART, decide which flops
// to replace with low-SER (SEUT/BISER-class) cells to hit an SDC FIT
// target at minimum cost — and show how much cheaper the AVF-guided plan
// is than hardening uniformly.
//
//	go run ./examples/hardening [-target 0.3]
package main

import (
	"flag"
	"fmt"
	"log"

	"seqavf/internal/experiments"
	"seqavf/internal/ser"
)

func main() {
	target := flag.Float64("target", 0.3, "fractional sequential-FIT reduction to plan for")
	flag.Parse()

	cfg := experiments.DefaultSetup()
	cfg.SuiteSize = 4
	env, err := experiments.Setup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := env.Analyzer.Solve(env.AvgInputs)
	if err != nil {
		log.Fatal(err)
	}
	fit := ser.DefaultFITParams()
	hp := ser.DefaultHardeningParams()
	plan, err := ser.PlanHardening(res, fit, hp, *target)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target: %.0f%% sequential SDC FIT reduction with %.0fx hardened cells\n\n",
		100**target, 1/hp.RateFactor)
	fmt.Printf("%-28s %-6s %-8s %-10s\n", "node", "bits", "avg AVF", "saved FIT")
	show := plan.Nodes
	if len(show) > 12 {
		show = show[:12]
	}
	for _, n := range show {
		fmt.Printf("%-28s %-6d %-8.3f %-10.2f\n", n.Node, n.Bits, n.AVF, n.SavedFIT)
	}
	if len(plan.Nodes) > len(show) {
		fmt.Printf("... and %d more nodes\n", len(plan.Nodes)-len(show))
	}
	fmt.Printf("\nplan: harden %d of %d sequential bits (%.1f%%, cost %.0f AU)\n",
		plan.HardenedBits, plan.TotalSeqBits,
		100*float64(plan.HardenedBits)/float64(plan.TotalSeqBits), plan.Cost)
	fmt.Printf("sequential SDC FIT: %.1f -> %.1f (%.0f%% reduction)\n",
		plan.BaseSeqFIT, plan.PlannedSeqFIT, 100*plan.Reduction())
	fmt.Printf("uniform (AVF-blind) hardening of the same bit count would leave %.1f\n",
		ser.RandomHardeningFIT(plan, fit, hp))
}
