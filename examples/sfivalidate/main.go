// Sfivalidate validates SART against brute-force statistical fault
// injection on the gate-level tinycore CPU running a real program — the
// cross-check the paper performs conceptually when it compares its
// analytical estimates to detailed simulation.
//
// Both tools see the same machine: the ACE performance model measures
// port AVFs for the ISA-visible structures, SART propagates them through
// the netlist's bit graph, and SFI flips real bits in the simulated
// netlist and watches the program output.
//
//	go run ./examples/sfivalidate [-workload md5|lattice] [-inject 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seqavf/internal/experiments"
)

func main() {
	wl := flag.String("workload", "md5", "md5 or lattice")
	inject := flag.Int("inject", 4, "SFI injections per sequential bit")
	flag.Parse()

	r, err := experiments.Validate(*wl, *inject)
	if err != nil {
		log.Fatal(err)
	}
	r.WriteText(os.Stdout)
	fmt.Println()
	fmt.Println("reading the table: SART@1.0 (loop pAVF pinned to 100%) must bound")
	fmt.Println("every SFI measurement; the engineering value 0.3 trades per-flop")
	fmt.Println("accuracy for aggregate realism exactly as §4.3 of the paper discusses.")
}
