// Correlation reproduces the paper's Figure 10 experiment end to end:
//
//  1. run the Lattice and MD5-like kernels on the ACE-instrumented
//     performance model to measure per-workload port AVFs,
//
//  2. resolve sequential AVFs for the XeonLike design with SART,
//
//  3. compute modeled SER two ways — the old structure-AVF proxy and the
//     new sequential AVFs (Equation 1),
//
//  4. "measure" the design under a simulated accelerated beam, and
//
//  5. report model-to-measurement correlation before and after.
//
//     go run ./examples/correlation [-seed 2015]
package main

import (
	"flag"
	"fmt"
	"log"

	"seqavf/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 2027, "design/workload seed")
	flag.Parse()

	cfg := experiments.DefaultSetup()
	cfg.Seed = *seed
	cfg.SuiteSize = 2
	env, err := experiments.Setup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := experiments.Figure10(env)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("modeled vs (simulated) beam-measured SER, normalized to the measurement")
	fmt.Println()
	for _, wl := range r.Workloads {
		c := wl.Corr
		m := c.Measured.FIT
		fmt.Printf("%s (beam observed %d errors):\n", c.Workload, c.Measured.Errors)
		fmt.Printf("  pre  (structure-AVF proxy): %.2f x measured\n", c.PreFIT/m.Point)
		fmt.Printf("  post (sequential AVFs):     %.2f x measured  [interval %.2f..%.2f]\n",
			c.PostFIT/m.Point, m.Lo/m.Point, m.Hi/m.Point)
		fmt.Printf("  correlation improvement:    %.0f%%; within measurement error: %v\n",
			100*c.Improvement(), c.WithinMeasurement())
		fmt.Printf("  avg sequential AVF %.3f vs proxy %.3f (%.0f%% lower)\n\n",
			wl.SeqAVF, wl.ProxyAVF, 100*wl.Reduction)
	}
	fmt.Printf("mean correlation improvement: %.0f%% (paper: ~66%%)\n", 100*r.MeanImprovement)
}
