// Quickstart: build a small netlist in code, supply port AVFs, run SART,
// and print every sequential node's AVF with its closed-form equation.
//
// The circuit is the paper's vocabulary in miniature: a structure read
// port feeding a pipeline that forks (distribution split), a logical join
// with a second structure, a control register, and a feedback loop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"seqavf"
	"seqavf/internal/netlist"
)

func main() {
	// 1. Describe the design.
	d := seqavf.NewDesign("quickstart")
	d.AddStructure("IQ", 8, 16)  // an ACE-modeled instruction queue
	d.AddStructure("ROB", 8, 16) // an ACE-modeled reorder buffer

	m := d.AddModule("pipe")
	b := seqavf.Build(m)
	issued := b.SRead("iq_rd", 16, "IQ", "issue") // read port: walk source
	// A three-deep pipeline from the IQ.
	s3 := b.Pipe("stage", 16, 3, issued)
	// Distribution split: the pipeline output feeds two consumers.
	left := b.Seq("left_q", 16, s3)
	right := b.Seq("right_q", 16, s3)
	// A control register gates the right-hand path.
	gate := b.CtrlReg("cfg_gate", 16, "cfg_gate", 0xFFFF)
	gated := b.C("gated", 16, netlist.OpAnd, right, gate)
	// A counter loop mixes into the left path.
	one := b.Const("one", 16, 1)
	b.Seq("count", 16, "count_next")
	b.C("count_next", 16, netlist.OpAdd, "count", one)
	mixed := b.C("mixed", 16, netlist.OpXor, left, "count")
	// Logical join of the two paths into the ROB write port.
	join := b.C("join", 16, netlist.OpOr, mixed, gated)
	b.SWrite("rob_wr", "ROB", "alloc", b.Seq("out_q", 16, join))
	d.AddFub("PIPE", "pipe")

	// 2. Flatten and extract the bit graph.
	fd, err := seqavf.Flatten(d)
	if err != nil {
		log.Fatal(err)
	}
	g, err := seqavf.BuildGraph(fd)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Supply the measured port AVFs (here: hand-written; see the
	// correlation example for values measured by the ACE performance
	// model).
	in := seqavf.NewInputs()
	in.ReadPorts[seqavf.StructPort{Struct: "IQ", Port: "issue"}] = 0.22
	in.WritePorts[seqavf.StructPort{Struct: "ROB", Port: "alloc"}] = 0.15

	// 4. Run SART.
	a, err := seqavf.NewAnalyzer(g, seqavf.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Solve(in)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report.
	byNode := res.SeqAVFByNode()
	names := make([]string, 0, len(byNode))
	for n := range byNode {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("sequential node AVFs:")
	for _, n := range names {
		fub, node, _ := strings.Cut(n, "/")
		v, _, _ := g.VertexBase(fub, node)
		fmt.Printf("  %-16s %.4f  %s\n", n, byNode[n], res.Equation(v))
	}
	s := res.Summarize()
	fmt.Printf("\nweighted average sequential AVF: %.4f over %d bits\n",
		s.WeightedSeqAVF, s.SeqBits)
	fmt.Printf("loop bits: %d, control-register bits: %d, visited: %.0f%%\n",
		s.LoopSeqBits, s.CtrlBits, 100*s.VisitedFraction)

	// Closed forms re-evaluate instantly for new measurements (§5.1).
	in.ReadPorts[seqavf.StructPort{Struct: "IQ", Port: "issue"}] = 0.05
	if err := res.Reevaluate(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter a quieter workload (pAVF_R 0.22 -> 0.05): avg %.4f\n",
		res.Summarize().WeightedSeqAVF)
	os.Exit(0)
}
