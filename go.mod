module seqavf

go 1.22
