// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md experiment index), plus the cost comparisons
// that motivate the technique: analytical SART resolution vs RTL-level
// statistical fault injection.
//
//	go test -bench=. -benchmem
package seqavf_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"testing"

	"seqavf/internal/artifact"
	"seqavf/internal/core"
	"seqavf/internal/experiments"
	"seqavf/internal/graph"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/harden"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/pavf"
	"seqavf/internal/ser"
	"seqavf/internal/sfi"
	"seqavf/internal/stats"
	"seqavf/internal/sweep"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultSetup()
		cfg.SuiteSize = 4
		benchEnv, benchErr = experiments.Setup(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkTable1Fig7 resolves the paper's worked example (Table 1 /
// Figure 7) from scratch: netlist, graph extraction, walks, resolution.
func BenchmarkTable1Fig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8LoopSweep regenerates the Figure 8 loop-boundary sweep
// (nine full solves of the XeonLike design).
func BenchmarkFig8LoopSweep(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(e, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9FullDesign regenerates Figure 9: the FUB-partitioned
// relaxation over the whole design with FUBIO merging per iteration.
func BenchmarkFig9FullDesign(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergenceTrace regenerates the §6.1 convergence study.
func BenchmarkConvergenceTrace(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Convergence(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Correlation regenerates Figure 10: two workload ACE
// bindings, SART solves, FIT models and simulated beam measurements.
func BenchmarkFig10Correlation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonolithicSolve times one full SART fixpoint on the XeonLike
// design (the per-workload cost without closed forms).
func BenchmarkMonolithicSolve(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Analyzer.Solve(e.AvgInputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolicReeval times the §5.1 payoff: plugging fresh pAVFs
// into the closed-form equations instead of re-walking.
func BenchmarkSymbolicReeval(b *testing.B) {
	e := env(b)
	res, err := e.Analyzer.Solve(e.AvgInputs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.Reevaluate(e.AvgInputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSARTTinycore times the complete analytical pipeline on the
// netlist CPU: flatten, graph extraction, analysis, resolution. This is
// the numerator of the paper's speed claim.
func BenchmarkSARTTinycore(b *testing.B) {
	p := workload.MD5Like(60)
	perf, err := uarch.Run(p, uarch.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	inputs, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd, err := tinycore.FlatDesign(len(p.Code))
		if err != nil {
			b.Fatal(err)
		}
		g, err := graph.Build(fd)
		if err != nil {
			b.Fatal(err)
		}
		a, err := core.NewAnalyzer(g, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Solve(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSFIInjection times brute-force fault injection per injected
// fault — the denominator of the paper's speed claim (§3.1). Each
// injection costs a golden fast-forward plus a propagation window of
// full-netlist simulation.
func BenchmarkSFIInjection(b *testing.B) {
	p := workload.MD5Like(20)
	m, err := tinycore.New(p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sfi.DefaultConfig()
	cfg.InjectionsPerBit = 1
	cfg.Window = 300
	obs := sfi.Observation{Fub: tinycore.FubName, Valid: "out_valid", Data: "out_data", Halted: "halted_o"}
	b.ResetTimer()
	totalInjections := 0
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sfi.Run(m.Sim, obs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		totalInjections += res.Injections
	}
	b.StopTimer()
	if totalInjections > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalInjections), "ns/injection")
	}
}

// BenchmarkPerfModelACE times one ACE-instrumented performance-model run
// (the fast side of the paper's hybrid).
func BenchmarkPerfModelACE(b *testing.B) {
	p := workload.Lattice(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Run(p, uarch.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTLSimCycle times raw netlist simulation (the slow side).
func BenchmarkRTLSimCycle(b *testing.B) {
	m, err := tinycore.New(workload.MD5Like(50))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkGraphBuild times bit-level graph extraction for the XeonLike
// design.
func BenchmarkGraphBuild(b *testing.B) {
	e := env(b)
	fd, err := netlist.Flatten(e.Gen.Design)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Build(fd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnion measures the core set-algebra operation.
func BenchmarkUnion(b *testing.B) {
	u := pavf.NewUniverse()
	ids := make([]pavf.TermID, 32)
	for i := range ids {
		ids[i] = u.Intern(pavf.Term{Kind: pavf.KindReadPort, Name: string(rune('A' + i))})
	}
	x := pavf.NewSet(ids[:16]...)
	y := pavf.NewSet(ids[8:24]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

// BenchmarkAblationBitFieldAnalysis contrasts whole-entry vs per-field
// ACE tracking (the §5.1 Bit Field Analysis design choice): the accuracy
// gain is measured by TestBitFieldAblation; this measures the cost.
func BenchmarkAblationBitFieldAnalysis(b *testing.B) {
	p := workload.Lattice(8)
	for _, mode := range []struct {
		name  string
		whole bool
	}{{"fields", false}, {"whole-entry", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := uarch.DefaultConfig()
			cfg.WholeEntryIQ = mode.whole
			for i := 0; i < b.N; i++ {
				if _, err := uarch.Run(p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHardeningPlan times the mitigation planning pass (§1's
// deployment decision) on the XeonLike design.
func BenchmarkHardeningPlan(b *testing.B) {
	e := env(b)
	res, err := e.Analyzer.Solve(e.AvgInputs)
	if err != nil {
		b.Fatal(err)
	}
	fit := ser.DefaultFITParams()
	hp := ser.DefaultHardeningParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ser.PlanHardening(res, fit, hp, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHardenOptimize times the selective-hardening optimizer
// (internal/harden) on the XeonLike design: one protection plan per
// solver at half the design's total bit cost, plus the analytical
// term-sensitivity gradient over the compiled plan.
func BenchmarkHardenOptimize(b *testing.B) {
	e := env(b)
	res, err := e.Analyzer.Solve(e.AvgInputs)
	if err != nil {
		b.Fatal(err)
	}
	model, err := harden.NewModel(res, nil)
	if err != nil {
		b.Fatal(err)
	}
	total := 0.0
	for _, c := range model.Candidates() {
		total += c.Cost
	}
	budget := total / 2
	for _, solver := range []string{harden.SolverGreedy, harden.SolverDP} {
		b.Run(solver, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := model.Optimize(budget, solver); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sensitivity", func(b *testing.B) {
		plan, err := sweep.Compile(res)
		if err != nil {
			b.Fatal(err)
		}
		penv, err := e.Analyzer.CheckedEnv(res.Inputs)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := harden.TermDerivs(plan, penv); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProtectionSweep regenerates the §1 protection projection.
func BenchmarkProtectionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Protection(7, []float64{0, 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergenceScaling regenerates the §5.2 iteration-law study.
func BenchmarkConvergenceScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ConvergenceScaling([]int{4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelPartitioned contrasts serial and parallel relaxation.
func BenchmarkParallelPartitioned(b *testing.B) {
	e := env(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := e.Analyzer.Opts
			opts.Workers = workers
			a, err := core.NewAnalyzer(e.Analyzer.G, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.SolvePartitioned(e.AvgInputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	sweepOnce sync.Once
	sweepAnl  *core.Analyzer
	sweepRes  *core.Result
	sweepWork []sweep.Workload
	sweepErr  error
)

// sweepSetup solves tinycore once and synthesizes 32 workloads as seeded
// perturbations of a measured run — the batch both sweep benchmarks share.
func sweepSetup(b *testing.B) (*core.Analyzer, *core.Result, []sweep.Workload) {
	b.Helper()
	sweepOnce.Do(func() {
		p := workload.MD5Like(40)
		fd, err := tinycore.FlatDesign(len(p.Code))
		if err != nil {
			sweepErr = err
			return
		}
		g, err := graph.Build(fd)
		if err != nil {
			sweepErr = err
			return
		}
		sweepAnl, err = core.NewAnalyzer(g, core.DefaultOptions())
		if err != nil {
			sweepErr = err
			return
		}
		perf, err := uarch.Run(p, uarch.DefaultConfig())
		if err != nil {
			sweepErr = err
			return
		}
		base, err := tinycore.BindInputs(perf.Report)
		if err != nil {
			sweepErr = err
			return
		}
		sweepRes, err = sweepAnl.Solve(base)
		if err != nil {
			sweepErr = err
			return
		}
		for i := 0; i < 32; i++ {
			rng := stats.New(uint64(1000 + i))
			in := core.NewInputs()
			jitter := func(v float64) float64 {
				v += (rng.Float64() - 0.5) * 0.2
				return math.Min(1, math.Max(0, v))
			}
			ports := func(dst, src map[core.StructPort]float64) {
				keys := make([]core.StructPort, 0, len(src))
				for sp := range src {
					keys = append(keys, sp)
				}
				sort.Slice(keys, func(a, b int) bool {
					return keys[a].Struct < keys[b].Struct ||
						(keys[a].Struct == keys[b].Struct && keys[a].Port < keys[b].Port)
				})
				for _, sp := range keys {
					dst[sp] = jitter(src[sp])
				}
			}
			ports(in.ReadPorts, base.ReadPorts)
			ports(in.WritePorts, base.WritePorts)
			sweepWork = append(sweepWork, sweep.Workload{Name: fmt.Sprintf("w%02d", i), Inputs: in})
		}
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepAnl, sweepRes, sweepWork
}

// BenchmarkBatchSweep32 evaluates 32 workloads through the compiled plan
// (internal/sweep): the compile-once / serve-many path of §5.1.
func BenchmarkBatchSweep32(b *testing.B) {
	_, res, ws := sweepSetup(b)
	eng := sweep.New(sweep.Options{})
	if _, err := eng.Plan(res); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Sweep(res, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntervalSweep measures the windows-as-lanes payoff on
// tinycore: a 32-window workload swept as one interval batch through a
// warm engine (every window a lane of one compiled plan) against the
// same 32 windows swept independently, each through a fresh engine that
// must compile the plan itself. The arithmetic is identical — the
// interval property test pins the per-window results bit-for-bit
// against single-window sweeps — so the gap is pure plan-compile
// amortization, expected to approach T× as the window count T grows
// (EXPERIMENTS.md records the measured ratio).
func BenchmarkIntervalSweep(b *testing.B) {
	_, res, work := sweepSetup(b)
	const span = 100
	iw := sweep.IntervalWorkload{Name: "phased"}
	for i, w := range work {
		iw.Windows = append(iw.Windows, sweep.WindowSpan{
			Start: uint64(i * span), End: uint64((i + 1) * span),
		})
		iw.Inputs = append(iw.Inputs, w.Inputs)
	}
	b.Run("Packed32", func(b *testing.B) {
		eng := sweep.New(sweep.Options{})
		if _, err := eng.Plan(res); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SweepIntervals(res, []sweep.IntervalWorkload{iw}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(work)*b.N)/b.Elapsed().Seconds(), "windows/sec")
	})
	b.Run("Independent32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range work {
				eng := sweep.New(sweep.Options{})
				if _, err := eng.Sweep(res, []sweep.Workload{w}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(work)*b.N)/b.Elapsed().Seconds(), "windows/sec")
	})
}

// BenchmarkBlockedSweep contrasts the scalar per-workload plan walk
// (Plan.Eval, the BenchmarkBatchSweep32 path) against the blocked SoA
// kernel (Plan.EvalBlock) on the XeonLike design: 64 workloads, one
// evaluation worker, so the ratio isolates the kernel rather than
// parallelism. Results are bit-identical between the two paths; only the
// traversal order differs — scalar streams the CSR plan indices once per
// workload, blocked streams them once per 16-lane block.
//
// Each iteration starts from a collected heap (StopTimer + runtime.GC),
// the same quiesced-GC protocol as BenchmarkWarmStartVsSolve, so GC
// assist debt from prior iterations does not leak into either side.
func BenchmarkBlockedSweep(b *testing.B) {
	e := env(b)
	res, err := e.Analyzer.Solve(e.AvgInputs)
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	ws := make([]sweep.Workload, n)
	for i := range ws {
		rng := stats.New(uint64(7000 + i))
		in := core.NewInputs()
		jitter := func(v float64) float64 {
			v += (rng.Float64() - 0.5) * 0.2
			return math.Min(1, math.Max(0, v))
		}
		ports := func(dst, src map[core.StructPort]float64) {
			keys := make([]core.StructPort, 0, len(src))
			for sp := range src {
				keys = append(keys, sp)
			}
			sort.Slice(keys, func(a, b int) bool {
				return keys[a].Struct < keys[b].Struct ||
					(keys[a].Struct == keys[b].Struct && keys[a].Port < keys[b].Port)
			})
			for _, sp := range keys {
				dst[sp] = jitter(src[sp])
			}
		}
		ports(in.ReadPorts, e.AvgInputs.ReadPorts)
		ports(in.WritePorts, e.AvgInputs.WritePorts)
		ws[i] = sweep.Workload{Name: fmt.Sprintf("w%02d", i), Inputs: in}
	}
	quiesce := func(b *testing.B) {
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
	}
	for _, bc := range []struct {
		name  string
		block int
	}{
		{"Scalar", 1},
		{"Blocked16", 16},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := sweep.New(sweep.Options{Workers: 1, BlockSize: bc.block})
			if _, err := eng.Plan(res); err != nil {
				b.Fatal(err)
			}
			// Each 64-workload sweep allocates ~6 MB of Result vectors
			// against a smaller live heap, so with the collector enabled
			// every iteration crosses the GC trigger mid-measurement and
			// both sides mostly time concurrent-mark assists. Disable the
			// collector for the timed regions and collect in the stopped
			// windows instead — the forced GC above stays per-iteration.
			gcPct := debug.SetGCPercent(-1)
			defer debug.SetGCPercent(gcPct)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				quiesce(b)
				if _, err := eng.Sweep(res, ws); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "workloads/sec")
		})
	}
}

// BenchmarkTracedSweep measures the cost of request-scoped tracing on
// the blocked kernel: the same 64-workload XeonLike sweep as
// BenchmarkBlockedSweep/Blocked16, untraced (no registry) vs traced (a
// live registry, a per-iteration request span the sweep nests under, and
// a JSONL sink draining to io.Discard — the full seqavfd wiring). The
// instrumentation budget is <3% (EXPERIMENTS.md records the measured
// overhead); tracing that costs more than that would have to be sampled
// instead of always-on. The GC protocol matches BenchmarkBlockedSweep.
func BenchmarkTracedSweep(b *testing.B) {
	e := env(b)
	res, err := e.Analyzer.Solve(e.AvgInputs)
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	ws := make([]sweep.Workload, n)
	for i := range ws {
		rng := stats.New(uint64(7000 + i))
		in := core.NewInputs()
		jitter := func(v float64) float64 {
			v += (rng.Float64() - 0.5) * 0.2
			return math.Min(1, math.Max(0, v))
		}
		ports := func(dst, src map[core.StructPort]float64) {
			keys := make([]core.StructPort, 0, len(src))
			for sp := range src {
				keys = append(keys, sp)
			}
			sort.Slice(keys, func(a, b int) bool {
				return keys[a].Struct < keys[b].Struct ||
					(keys[a].Struct == keys[b].Struct && keys[a].Port < keys[b].Port)
			})
			for _, sp := range keys {
				dst[sp] = jitter(src[sp])
			}
		}
		ports(in.ReadPorts, e.AvgInputs.ReadPorts)
		ports(in.WritePorts, e.AvgInputs.WritePorts)
		ws[i] = sweep.Workload{Name: fmt.Sprintf("w%02d", i), Inputs: in}
	}
	quiesce := func(b *testing.B) {
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
	}
	for _, bc := range []struct {
		name   string
		traced bool
	}{
		{"Untraced", false},
		{"Traced", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := sweep.Options{Workers: 1, BlockSize: 16}
			var reg *obs.Registry
			if bc.traced {
				reg = obs.New()
				reg.SetSink(obs.NewJSONLSink(io.Discard))
				opts.Obs = reg
			}
			eng := sweep.New(opts)
			if _, err := eng.Plan(res); err != nil {
				b.Fatal(err)
			}
			gcPct := debug.SetGCPercent(-1)
			defer debug.SetGCPercent(gcPct)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				quiesce(b)
				ctx := context.Background()
				var sp *obs.Span
				if bc.traced {
					sp = reg.StartSpanContext(ctx, "server.request")
					ctx = obs.ContextWithSpan(ctx, sp)
				}
				if _, err := eng.SweepContext(ctx, res, ws); err != nil {
					b.Fatal(err)
				}
				sp.End()
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "workloads/sec")
		})
	}
}

// BenchmarkPerWorkloadSolve32 is the baseline the sweep engine replaces:
// a full symbolic solve (walks and all) per workload.
func BenchmarkPerWorkloadSolve32(b *testing.B) {
	a, _, ws := sweepSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			if _, err := a.Solve(w.Inputs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWarmStartVsSolve contrasts bringing the XeonLike design up
// cold (a full symbolic solve, plan compilation, and the persist-back
// that cliutil.SolveWithStore and the server's engine both perform —
// what a store-backed process does per design on first startup)
// against warm-starting it from the persisted artifact, which restores
// the solved result and the compiled plan in one read: the
// process-restart payoff of internal/artifact. Both paths need the
// analyzer, so its construction is excluded, and both end in the same
// state — result and plan in memory, artifact on disk; the ratio
// isolates what the store actually saves.
//
// Each iteration starts from a collected heap (StopTimer + runtime.GC):
// a real startup runs its one solve-or-decode against a fresh heap, so
// GC assist debt accumulated by the previous benchmark iterations —
// which no production process ever pays — must not leak into either
// side's timing.
func BenchmarkWarmStartVsSolve(b *testing.B) {
	e := env(b)
	st, err := artifact.Open(b.TempDir(), artifact.Options{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.Analyzer.Solve(e.AvgInputs)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Put(res, nil); err != nil {
		b.Fatal(err)
	}
	quiesce := func(b *testing.B) {
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
	}
	b.Run("ColdSolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			quiesce(b)
			r, err := e.Analyzer.Solve(e.AvgInputs)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := sweep.Compile(r)
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Put(r, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WarmStart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			quiesce(b)
			got, plan, err := st.Get(e.Analyzer)
			if err != nil {
				b.Fatal(err)
			}
			if got == nil || plan == nil {
				b.Fatal("artifact store missed a known fingerprint")
			}
			// Production warm starts (cliutil.SolveWithStore, server
			// LoadNetlist) re-evaluate only when the requested inputs
			// differ from the stored ones; at startup they match.
			if !got.Inputs.Equal(e.AvgInputs) {
				if err := got.Reevaluate(e.AvgInputs); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkIncrementalResolve measures the ECO payoff on the XeonLike
// design: after a single-FUB netlist edit (add-flop), a full
// FUB-partitioned re-solve of the edited design versus
// ResolveIncremental seeded from the pre-edit artifact state. The
// incremental path diffs per-FUB fingerprints, re-walks only the dirty
// FUB plus its cross-edge neighbours, and reuses every other FUB's
// closed forms from the prior — the acceptance target is a >=5x
// speedup for single-FUB edits (EXPERIMENTS.md records the measured
// ratio). PriorState construction is excluded from the incremental
// side: a production ECO loop decodes it once from the artifact store,
// not per re-solve. The quiesced-GC protocol matches
// BenchmarkWarmStartVsSolve.
func BenchmarkIncrementalResolve(b *testing.B) {
	e := env(b)
	base, err := e.Analyzer.SolvePartitioned(e.AvgInputs)
	if err != nil {
		b.Fatal(err)
	}
	prior, err := base.PriorState()
	if err != nil {
		b.Fatal(err)
	}
	fd, err := netlist.Flatten(e.Gen.Design)
	if err != nil {
		b.Fatal(err)
	}
	quiesce := func(b *testing.B) {
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
	}
	for _, bc := range []struct {
		name string
		kind graphtest.EditKind
	}{
		{"AddFlop", graphtest.EditAddFlop},
		{"RemoveFlop", graphtest.EditRemoveFlop},
		{"RetimeCell", graphtest.EditRetimeCell},
		{"RewireFubio", graphtest.EditRewireFubio},
	} {
		b.Run(bc.name, func(b *testing.B) {
			_, eg, ed, err := graphtest.ApplyEditFlat(fd, e.Analyzer.G, bc.kind, 41)
			if err != nil {
				b.Fatal(err)
			}
			a2, err := core.NewAnalyzer(eg, e.Analyzer.Opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("edit: %s (touched FUBs: %v)", ed.Desc, ed.TouchedFubs)
			b.Run("ColdSolve", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					quiesce(b)
					if _, err := a2.SolvePartitioned(e.AvgInputs); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("Incremental", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					quiesce(b)
					_, st, err := a2.ResolveIncremental(e.AvgInputs, prior)
					if err != nil {
						b.Fatal(err)
					}
					if !st.Converged || st.FubsReused == 0 {
						b.Fatalf("incremental re-solve degenerated: %+v", st)
					}
				}
			})
		})
	}
}
