#!/bin/sh
# Coverage gate for the numerical core: the packages whose arithmetic
# the bit-identity harness pins (the sweep engine with its blocked
# kernel, the pAVF closed forms, the ACE lifetime model with its window
# emission, the pAVF table parsers, and the hardening optimizer's
# gradient + knapsack solvers) must keep statement coverage above
# fixed floors. Floors are set below current coverage (sweep ~82%,
# pavf ~85%, harden ~86%, ace ~93%, pavfio ~93% when gated) so routine
# changes pass, but a PR that lands substantial untested kernel code
# trips the gate. Exits non-zero naming every package under its floor.
set -eu

GO=${GO:-go}

# package floor
GATES="
internal/core 75.0
internal/sweep 75.0
internal/pavf 78.0
internal/pavfio 80.0
internal/ace 75.0
internal/harden 78.0
"

fail=0
echo "$GATES" | while read -r pkg floor; do
    [ -n "$pkg" ] || continue
    out=$($GO test -cover "./$pkg/" 2>&1) || {
        echo "cover: tests failed in $pkg:" >&2
        echo "$out" >&2
        exit 1
    }
    pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "cover: no coverage figure in output for $pkg:" >&2
        echo "$out" >&2
        exit 1
    fi
    ok=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "cover: $pkg at ${pct}% is below the ${floor}% floor" >&2
        exit 1
    fi
    echo "cover: $pkg ${pct}% (floor ${floor}%)"
done || fail=1

exit $fail
