#!/bin/sh
# Smoke test for the sweep fleet: three seqavfd replicas (each with its
# own artifact store and -peers pointing at the other two) behind one
# seqavf-gateway. Drives a consistent-hash-routed sweep through the
# gateway, checks the merged fleet-wide /metrics, then restarts one
# replica with an EMPTY artifact directory and asserts it warm-starts
# its design over the remote artifact tier (artifact.remote_hits >= 1,
# no cold solve) and serves the same sweep answer. Exits non-zero if
# any step fails.
set -eu

SEED=${SEED:-2027}
GW_ADDR=${GW_ADDR:-127.0.0.1:18100}
R1_ADDR=${R1_ADDR:-127.0.0.1:18101}
R2_ADDR=${R2_ADDR:-127.0.0.1:18102}
R3_ADDR=${R3_ADDR:-127.0.0.1:18103}
DIR=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do
        if kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

echo "fleet-smoke: building designgen, seqavfd, seqavf-gateway"
go build -o "$DIR/bin/" ./cmd/designgen ./cmd/seqavfd ./cmd/seqavf-gateway

echo "fleet-smoke: generating design (seed $SEED)"
"$DIR/bin/designgen" -seed "$SEED" -o "$DIR/design.nl" -pavf "$DIR/pavf.txt"

# wait_healthy ADDR polls /healthz until the listener is up (up to ~5s).
wait_healthy() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "fleet-smoke: $1 never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# start_replica ADDR DIR PEERS -> sets LAST_PID; every replica loads the
# same design so the gateway can fail over freely.
start_replica() {
    "$DIR/bin/seqavfd" -listen "$1" -design "$DIR/design.nl" \
        -artifacts "$2" -peers "$3" &
    LAST_PID=$!
    PIDS="$PIDS $LAST_PID"
}

echo "fleet-smoke: starting 3 replicas"
start_replica "$R1_ADDR" "$DIR/art1" "$R2_ADDR,$R3_ADDR"
R1_PID=$LAST_PID
start_replica "$R2_ADDR" "$DIR/art2" "$R1_ADDR,$R3_ADDR"
R2_PID=$LAST_PID
start_replica "$R3_ADDR" "$DIR/art3" "$R1_ADDR,$R2_ADDR"
wait_healthy "$R1_ADDR"
wait_healthy "$R2_ADDR"
wait_healthy "$R3_ADDR"

echo "fleet-smoke: starting gateway on $GW_ADDR"
"$DIR/bin/seqavf-gateway" -listen "$GW_ADDR" \
    -replicas "$R1_ADDR,$R2_ADDR,$R3_ADDR" &
PIDS="$PIDS $!"
wait_healthy "$GW_ADDR"
echo "fleet-smoke: gateway healthy"

# Build the sweep request: the pAVF table goes into the JSON body as one
# escaped string.
{
    printf '{"design":"xeonlike_%s","workloads":[{"name":"smoke","pavf":"' "$SEED"
    awk '{printf "%s\\n", $0}' "$DIR/pavf.txt"
    printf '"}]}'
} >"$DIR/req.json"

# run_sweep OUT drives the sweep through the gateway.
run_sweep() {
    curl -sf -X POST -H 'Content-Type: application/json' \
        --data-binary "@$DIR/req.json" "http://$GW_ADDR/v1/sweep" >"$1"
    grep -q '"WeightedSeqAVF"' "$1" || {
        echo "fleet-smoke: sweep response missing WeightedSeqAVF:" >&2
        cat "$1" >&2
        exit 1
    }
}
run_sweep "$DIR/resp1.json"
echo "fleet-smoke: routed sweep ok ($(wc -c <"$DIR/resp1.json") bytes)"

# The fleet-wide exposition must merge replica counters (the sweep we
# just ran) with the gateway's own routing counters.
curl -sf "http://$GW_ADDR/metrics" >"$DIR/metrics.prom"
grep -q '^server_sweep_ok [1-9]' "$DIR/metrics.prom" || {
    echo "fleet-smoke: merged /metrics missing server_sweep_ok:" >&2
    head -30 "$DIR/metrics.prom" >&2 || true
    exit 1
}
grep -q '^gateway_route_total [1-9]' "$DIR/metrics.prom" || {
    echo "fleet-smoke: merged /metrics missing gateway_route_total:" >&2
    head -30 "$DIR/metrics.prom" >&2 || true
    exit 1
}
echo "fleet-smoke: merged exposition ok ($(grep -c '^# TYPE' "$DIR/metrics.prom") families)"

# Rolling restart: kill replica 2 and bring it back with a FRESH, EMPTY
# artifact directory. It must warm-start its design over the remote
# tier from a peer that still holds the artifact — no cold solve.
echo "fleet-smoke: restarting replica 2 with an empty artifact dir"
kill -TERM "$R2_PID"
wait "$R2_PID" || true
start_replica "$R2_ADDR" "$DIR/art2-fresh" "$R1_ADDR,$R3_ADDR"
wait_healthy "$R2_ADDR"

curl -sf "http://$R2_ADDR/metrics.json" >"$DIR/metrics2.json"
grep -q '"artifact.remote_hits": *[1-9]' "$DIR/metrics2.json" || {
    echo "fleet-smoke: restarted replica did not pull from its peers:" >&2
    grep -o '"artifact\.[a-z_]*": *[0-9]*' "$DIR/metrics2.json" >&2 || true
    exit 1
}
grep -q '"artifact.warm_start": *[1-9]' "$DIR/metrics2.json" || {
    echo "fleet-smoke: restarted replica did not warm-start:" >&2
    grep -o '"artifact\.[a-z_]*": *[0-9]*' "$DIR/metrics2.json" >&2 || true
    exit 1
}
if grep -q '"artifact.cold_start": *[1-9]' "$DIR/metrics2.json"; then
    echo "fleet-smoke: restarted replica solved cold despite warm peers:" >&2
    grep -o '"artifact\.[a-z_]*": *[0-9]*' "$DIR/metrics2.json" >&2 || true
    exit 1
fi
echo "fleet-smoke: remote warm start confirmed ($(grep -o '"artifact.remote_hits": *[0-9]*' "$DIR/metrics2.json"))"

# The warm-started fleet must give the same answer: the sweep summary
# (WeightedSeqAVF et al.) is bit-identical because the remote artifact
# decodes to the same closed forms.
run_sweep "$DIR/resp2.json"
extract_scores() {
    grep -o '"WeightedSeqAVF": *[0-9.e+-]*' "$1"
}
if [ "$(extract_scores "$DIR/resp1.json")" != "$(extract_scores "$DIR/resp2.json")" ]; then
    echo "fleet-smoke: sweep results diverged across the rolling restart:" >&2
    extract_scores "$DIR/resp1.json" >&2
    extract_scores "$DIR/resp2.json" >&2
    exit 1
fi
echo "fleet-smoke: post-restart sweep bit-identical"

echo "fleet-smoke: shutting fleet down"
for pid in $PIDS; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in $PIDS; do
    wait "$pid" 2>/dev/null || true
done
PIDS=""
echo "fleet-smoke: clean shutdown"
