#!/bin/sh
# Smoke test for the seqavfd sweep service: generate a design and a
# measured pAVF table, start the server with a persistent artifact
# store, probe /healthz, run one sweep through /v1/sweep, and shut it
# down with SIGTERM (exercising the graceful drain path). Then restart
# the server against the same artifact directory and assert it
# warm-started the design from disk (obs counter artifact.warm_start)
# instead of solving again. Exits non-zero if any step fails.
set -eu

SEED=${SEED:-2027}
ADDR=${ADDR:-127.0.0.1:18091}
DIR=$(mktemp -d)
PID=""
cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$DIR"
}
trap cleanup EXIT

# Real binaries, not `go run`: SIGTERM must reach seqavfd itself so the
# drain path is what gets exercised.
echo "seqavfd-smoke: building designgen and seqavfd"
go build -o "$DIR/bin/" ./cmd/designgen ./cmd/seqavfd

echo "seqavfd-smoke: generating design (seed $SEED)"
"$DIR/bin/designgen" -seed "$SEED" -o "$DIR/design.nl" -pavf "$DIR/pavf.txt"

# wait_healthy polls /healthz until the listener is up (up to ~5s).
wait_healthy() {
    i=0
    until curl -sf "http://$ADDR/healthz" >"$DIR/healthz.json" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "seqavfd-smoke: server never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "seqavfd-smoke: starting seqavfd on $ADDR (artifacts in $DIR/artifacts)"
"$DIR/bin/seqavfd" -listen "$ADDR" -design "$DIR/design.nl" -artifacts "$DIR/artifacts" &
PID=$!
wait_healthy
echo "seqavfd-smoke: /healthz ok: $(cat "$DIR/healthz.json")"

# Build the sweep request: the pAVF table goes into the JSON body as one
# escaped string (tables contain no quotes, so only newlines need it).
{
    printf '{"design":"xeonlike_%s","workloads":[{"name":"smoke","pavf":"' "$SEED"
    awk '{printf "%s\\n", $0}' "$DIR/pavf.txt"
    printf '"}]}'
} >"$DIR/req.json"

run_sweep() {
    curl -sf -X POST -H 'Content-Type: application/json' \
        --data-binary "@$DIR/req.json" "http://$ADDR/v1/sweep" >"$DIR/resp.json"
    grep -q '"WeightedSeqAVF"' "$DIR/resp.json" || {
        echo "seqavfd-smoke: sweep response missing WeightedSeqAVF:" >&2
        cat "$DIR/resp.json" >&2
        exit 1
    }
    echo "seqavfd-smoke: sweep ok ($(wc -c <"$DIR/resp.json") bytes)"
}
run_sweep

# Interval probe: synthesize a two-window interval table from the same
# measured pAVF table and sweep it through /v1/sweep/intervals. The
# response must carry the per-node time series and summary stats, and
# the window counter must land on the Prometheus exposition.
{
    printf '{"design":"xeonlike_%s","nodes":true,"workloads":[{"name":"smoke","table":"' "$SEED"
    printf '# workload smoke\\n# window 0 0 100\\n'
    awk '{printf "%s\\n", $0}' "$DIR/pavf.txt"
    printf '# window 1 100 200\\n'
    awk '{printf "%s\\n", $0}' "$DIR/pavf.txt"
    printf '"}]}'
} >"$DIR/ireq.json"
curl -sf -X POST -H 'Content-Type: application/json' \
    --data-binary "@$DIR/ireq.json" "http://$ADDR/v1/sweep/intervals" >"$DIR/iresp.json"
for field in '"windows_evaluated": 2' '"chip_avf"' '"peak_to_mean"' '"seqavf"'; do
    grep -q "$field" "$DIR/iresp.json" || {
        echo "seqavfd-smoke: interval response missing $field:" >&2
        cat "$DIR/iresp.json" >&2
        exit 1
    }
done
curl -sf "http://$ADDR/metrics" >"$DIR/metrics_intervals.prom"
grep -q '^sweep_windows_evaluated [1-9]' "$DIR/metrics_intervals.prom" || {
    echo "seqavfd-smoke: /metrics missing sweep_windows_evaluated:" >&2
    grep '^sweep' "$DIR/metrics_intervals.prom" >&2 || true
    exit 1
}
echo "seqavfd-smoke: interval sweep ok ($(wc -c <"$DIR/iresp.json") bytes)"

# One pass through the selective-hardening optimizer: the plan must
# protect at least one node, and the harden counters must land on the
# Prometheus exposition (dots render as underscores there).
printf '{"design":"xeonlike_%s","budgets":[64],"top_terms":3}' "$SEED" >"$DIR/harden.json"
curl -sf -X POST -H 'Content-Type: application/json' \
    --data-binary "@$DIR/harden.json" "http://$ADDR/v1/harden" >"$DIR/harden_resp.json"
grep -q '"chosen": *\[' "$DIR/harden_resp.json" || {
    echo "seqavfd-smoke: harden response has no protection set:" >&2
    cat "$DIR/harden_resp.json" >&2
    exit 1
}
grep -q '"key"' "$DIR/harden_resp.json" || {
    echo "seqavfd-smoke: harden plan chose no nodes:" >&2
    cat "$DIR/harden_resp.json" >&2
    exit 1
}
curl -sf "http://$ADDR/metrics" >"$DIR/metrics_harden.prom"
grep -q '^harden_requests [1-9]' "$DIR/metrics_harden.prom" || {
    echo "seqavfd-smoke: /metrics missing harden_requests:" >&2
    grep '^harden' "$DIR/metrics_harden.prom" >&2 || true
    exit 1
}
echo "seqavfd-smoke: harden ok ($(grep -o '"key"' "$DIR/harden_resp.json" | wc -l) protected nodes)"

echo "seqavfd-smoke: sending SIGTERM"
kill -TERM "$PID"
wait "$PID"
PID=""
echo "seqavfd-smoke: clean shutdown"

# Restart against the same artifact directory: the design must be
# registered from the persisted artifact (a warm start) rather than
# solved again. /metrics.json exposes the obs counters;
# artifact.warm_start must be at least 1 and artifact.cold_start absent
# or 0.
echo "seqavfd-smoke: restarting against $DIR/artifacts"
"$DIR/bin/seqavfd" -listen "$ADDR" -design "$DIR/design.nl" -artifacts "$DIR/artifacts" &
PID=$!
wait_healthy
curl -sf "http://$ADDR/metrics.json" >"$DIR/metrics.json"
grep -q '"artifact.warm_start": *[1-9]' "$DIR/metrics.json" || {
    echo "seqavfd-smoke: restart did not warm-start from the artifact store:" >&2
    grep -o '"artifact\.[a-z_]*": *[0-9]*' "$DIR/metrics.json" >&2 || true
    exit 1
}
echo "seqavfd-smoke: warm start confirmed ($(grep -o '"artifact.warm_start": *[0-9]*' "$DIR/metrics.json"))"

# The warm-started design must still answer sweeps.
run_sweep

# The Prometheus exposition must be live and carry the request latency
# histogram (fixed buckets, so a fleet of replicas aggregates cleanly).
curl -sf "http://$ADDR/metrics" >"$DIR/metrics.prom"
grep -q '^server_request_seconds_bucket{le="+Inf"} [1-9]' "$DIR/metrics.prom" || {
    echo "seqavfd-smoke: /metrics missing server_request_seconds_bucket:" >&2
    head -20 "$DIR/metrics.prom" >&2 || true
    exit 1
}
echo "seqavfd-smoke: prometheus exposition ok ($(grep -c '^# TYPE' "$DIR/metrics.prom") families)"

# The flight recorder must have captured the sweep.
curl -sf "http://$ADDR/debug/requests" >"$DIR/requests.json"
grep -q '"endpoint": "/v1/sweep"' "$DIR/requests.json" || {
    echo "seqavfd-smoke: /debug/requests missing the sweep record:" >&2
    cat "$DIR/requests.json" >&2
    exit 1
}
echo "seqavfd-smoke: flight recorder ok"

echo "seqavfd-smoke: sending SIGTERM"
kill -TERM "$PID"
wait "$PID"
PID=""
echo "seqavfd-smoke: clean shutdown after warm start"
