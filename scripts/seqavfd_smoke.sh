#!/bin/sh
# Smoke test for the seqavfd sweep service: generate a design and a
# measured pAVF table, start the server, probe /healthz, run one sweep
# through /v1/sweep, and shut it down with SIGTERM (exercising the
# graceful drain path). Exits non-zero if any step fails.
set -eu

SEED=${SEED:-2027}
ADDR=${ADDR:-127.0.0.1:18091}
DIR=$(mktemp -d)
PID=""
cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$DIR"
}
trap cleanup EXIT

# Real binaries, not `go run`: SIGTERM must reach seqavfd itself so the
# drain path is what gets exercised.
echo "seqavfd-smoke: building designgen and seqavfd"
go build -o "$DIR/bin/" ./cmd/designgen ./cmd/seqavfd

echo "seqavfd-smoke: generating design (seed $SEED)"
"$DIR/bin/designgen" -seed "$SEED" -o "$DIR/design.nl" -pavf "$DIR/pavf.txt"

echo "seqavfd-smoke: starting seqavfd on $ADDR"
"$DIR/bin/seqavfd" -listen "$ADDR" -design "$DIR/design.nl" &
PID=$!

# Wait for the listener (up to ~5s).
i=0
until curl -sf "http://$ADDR/healthz" >"$DIR/healthz.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "seqavfd-smoke: server never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done
echo "seqavfd-smoke: /healthz ok: $(cat "$DIR/healthz.json")"

# Build the sweep request: the pAVF table goes into the JSON body as one
# escaped string (tables contain no quotes, so only newlines need it).
{
    printf '{"design":"xeonlike_%s","workloads":[{"name":"smoke","pavf":"' "$SEED"
    awk '{printf "%s\\n", $0}' "$DIR/pavf.txt"
    printf '"}]}'
} >"$DIR/req.json"

curl -sf -X POST -H 'Content-Type: application/json' \
    --data-binary "@$DIR/req.json" "http://$ADDR/v1/sweep" >"$DIR/resp.json"
grep -q '"WeightedSeqAVF"' "$DIR/resp.json" || {
    echo "seqavfd-smoke: sweep response missing WeightedSeqAVF:" >&2
    cat "$DIR/resp.json" >&2
    exit 1
}
echo "seqavfd-smoke: sweep ok ($(wc -c <"$DIR/resp.json") bytes)"

echo "seqavfd-smoke: sending SIGTERM"
kill -TERM "$PID"
wait "$PID"
PID=""
echo "seqavfd-smoke: clean shutdown"
