// Package seqavf computes the architectural vulnerability factor (AVF) of
// every sequential bit in a processor design analytically, without RTL
// simulation — a from-scratch implementation of Raasch, Biswas, Stephan,
// Racunas and Emer, "A Fast and Accurate Analytical Technique to Compute
// the AVF of Sequential Bits in a Processor" (MICRO-48, 2015).
//
// This package is the public facade: it re-exports the stable API from
// the internal packages so downstream users have a single import. The
// pipeline is:
//
//  1. Describe (or parse) a netlist: FUB modules of sequential and
//     combinational nodes plus structure read/write ports (Design,
//     ParseNetlist, Build* helpers).
//  2. Flatten it and extract the bit-level node graph (Flatten, BuildGraph).
//  3. Obtain port AVFs: either measured by the bundled ACE-instrumented
//     performance model (RunPerfModel over Workload programs) or supplied
//     directly (Inputs).
//  4. Run SART (NewAnalyzer + Solve / SolvePartitioned) to resolve a
//     closed-form AVF equation and value for every bit.
//  5. Optionally validate with statistical fault injection (RunSFI) or
//     compute SER/FIT and beam correlations (the ser package via
//     internal/experiments).
//
// See README.md for a quickstart and DESIGN.md / EXPERIMENTS.md for the
// paper reproduction details.
package seqavf

import (
	"io"

	"seqavf/internal/ace"
	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/isa"
	"seqavf/internal/netlist"
	"seqavf/internal/rtlsim"
	"seqavf/internal/sfi"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// Netlist construction and processing.
type (
	// Design is a hierarchical netlist: modules, structures, FUB
	// instances and interconnect.
	Design = netlist.Design
	// Module is a named collection of nodes and sub-instances.
	Module = netlist.Module
	// Node is one word-level netlist element.
	Node = netlist.Node
	// Builder offers terse module-construction helpers.
	Builder = netlist.Builder
	// FlatDesign is the hierarchy-free form SART analyzes.
	FlatDesign = netlist.FlatDesign
	// Graph is the bit-level dependency graph extracted from a FlatDesign.
	Graph = graph.Graph
	// VertexID indexes one bit in a Graph.
	VertexID = graph.VertexID
)

// SART analysis.
type (
	// Analyzer binds a Graph to SART options.
	Analyzer = core.Analyzer
	// Options tune loop/pseudo pAVFs, control-register detection, and
	// the relaxation.
	Options = core.Options
	// Inputs carries measured port pAVFs and structure AVFs.
	Inputs = core.Inputs
	// StructPort names one structure port.
	StructPort = core.StructPort
	// Result holds per-bit closed forms and resolved AVFs.
	Result = core.Result
	// Summary aggregates design-wide statistics.
	Summary = core.Summary
	// FubStat summarizes one FUB (one bar of the paper's Figure 9).
	FubStat = core.FubStat
)

// Performance-model measurement.
type (
	// Program is an assembled workload for the bundled ISA.
	Program = isa.Program
	// PerfConfig sets the performance-model geometry.
	PerfConfig = uarch.Config
	// PerfResult carries the ACE measurements of one run.
	PerfResult = uarch.Result
	// ACEReport is the measured structure/port AVF table.
	ACEReport = ace.Report
)

// Fault injection.
type (
	// SFIConfig tunes a fault-injection campaign.
	SFIConfig = sfi.Config
	// SFIResult is a completed campaign.
	SFIResult = sfi.Result
	// SFIObservation names the compared output ports.
	SFIObservation = sfi.Observation
	// Sim is the cycle-accurate netlist simulator.
	Sim = rtlsim.Sim
)

// NewDesign returns an empty netlist design.
func NewDesign(name string) *Design { return netlist.NewDesign(name) }

// Build wraps a module in construction helpers.
func Build(m *Module) *Builder { return netlist.Build(m) }

// ParseNetlist reads the textual netlist format.
func ParseNetlist(r io.Reader) (*Design, error) { return netlist.Parse(r) }

// WriteNetlist serializes a design in the textual format.
func WriteNetlist(w io.Writer, d *Design) error { return netlist.Write(w, d) }

// Flatten removes all module hierarchy.
func Flatten(d *Design) (*FlatDesign, error) { return netlist.Flatten(d) }

// BuildGraph extracts the bit-level node graph.
func BuildGraph(fd *FlatDesign) (*Graph, error) { return graph.Build(fd) }

// DefaultOptions returns the paper's operating point (loop pAVF 0.3,
// 20 relaxation iterations, cfg_ control-register detection).
func DefaultOptions() Options { return core.DefaultOptions() }

// NewAnalyzer prepares a graph for SART analysis.
func NewAnalyzer(g *Graph, opts Options) (*Analyzer, error) { return core.NewAnalyzer(g, opts) }

// NewInputs returns empty measurement tables.
func NewInputs() *Inputs { return core.NewInputs() }

// DefaultPerfConfig returns the bundled performance-model geometry.
func DefaultPerfConfig() PerfConfig { return uarch.DefaultConfig() }

// RunPerfModel executes a workload on the ACE-instrumented performance
// model, producing structure AVFs and port pAVFs.
func RunPerfModel(p *Program, cfg PerfConfig) (*PerfResult, error) { return uarch.Run(p, cfg) }

// Workloads.

// LatticeWorkload builds the 2D lattice-force kernel (§6.2).
func LatticeWorkload(n int) *Program { return workload.Lattice(n) }

// MD5Workload builds the register-only MD5-style kernel (§6.2).
func MD5Workload(rounds int) *Program { return workload.MD5Like(rounds) }

// SyntheticSuite generates n parameterized workloads.
func SyntheticSuite(n int, seed uint64) []*Program { return workload.Suite(n, seed) }

// PointerChaseWorkload builds the serial linked-list traversal kernel.
func PointerChaseWorkload(nodes, laps int) *Program { return workload.PointerChase(nodes, laps) }

// TransactionWorkload builds the transaction-processing-like kernel.
func TransactionWorkload(records, txns int) *Program { return workload.TransactionMix(records, txns) }

// SDCVirusWorkload builds the worst-case-vulnerability kernel (the
// paper's SER-model-validation application, ref [8]).
func SDCVirusWorkload(iters int) *Program { return workload.SDCVirus(iters) }

// ParseAsm assembles a program from the textual assembly format.
func ParseAsm(name string, r io.Reader) (*Program, error) { return isa.ParseAsm(name, r) }

// WriteAsm disassembles a program into the textual assembly format.
func WriteAsm(w io.Writer, p *Program) error { return isa.WriteAsm(w, p) }

// NewSim instantiates the cycle-accurate simulator for a flattened design
// with behavioral structure models.
func NewSim(fd *FlatDesign, structs map[string]rtlsim.StructSim) (*Sim, error) {
	return rtlsim.New(fd, structs)
}

// RunSFI executes a statistical fault injection campaign (Equation 2).
func RunSFI(sim *Sim, obs SFIObservation, cfg SFIConfig) (*SFIResult, error) {
	return sfi.Run(sim, obs, cfg)
}

// DefaultSFIConfig returns a small but meaningful campaign configuration.
func DefaultSFIConfig() SFIConfig { return sfi.DefaultConfig() }
