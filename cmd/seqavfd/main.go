// Command seqavfd is the long-running workload-sweep service: it loads
// one or more netlist designs at startup, solves each symbolically once,
// and then serves sweep requests that re-evaluate the cached compiled
// plans against per-request pAVF tables — the paper's §5.1 compile-once /
// serve-many flow behind an HTTP API.
//
// Endpoints (see internal/server):
//
//	GET  /healthz        liveness + design count
//	GET  /metrics        Prometheus text exposition (scrape endpoint)
//	GET  /metrics.json   obs registry snapshot (counters, histograms, spans)
//	GET  /debug/requests flight recorder: last -flight request records
//	GET  /debug/pprof/   live profiles
//	GET  /v1/designs     registered designs
//	POST /v1/designs     upload a netlist (body = netlist text)
//	POST /v1/designs/{name}/edit  incremental (ECO) re-solve of a design
//	POST /v1/sweep       {"design": ..., "workloads": [{"name","pavf"}]}
//	POST /v1/sweep/intervals  time-resolved sweep: multi-window tables -> AVF time series
//	POST /v1/harden      selective-hardening optimizer: budget sweep -> plans
//	GET  /v1/artifacts/{fingerprint}  raw artifact bytes (fleet pull-through)
//
// Every request runs under a trace: an incoming W3C traceparent header
// is honored and echoed, and requests slower than -slow-sweep-ms emit
// their full span tree as one JSON line to stderr.
//
// Saturation returns 429 with Retry-After; SIGINT/SIGTERM drains
// in-flight sweeps for -drain before aborting them.
//
// Usage:
//
//	seqavfd -listen :8091 -design xeon.nl -design tiny.nl
//	seqavfd -listen :8091 -design xeon.nl -max-concurrent 16 -timeout 10s
//	seqavfd -listen :8091 -design xeon.nl -artifacts /var/cache/seqavf
//
// With -artifacts DIR, solved designs and their compiled plans persist
// across restarts in a content-addressed store keyed by the design
// fingerprint: a restarted daemon warm-starts each known design from
// disk instead of solving it again, and designs uploaded at runtime are
// persisted back. The startup log reports warm vs cold counts.
//
// With -peers URL,... the store additionally pulls through the fleet: a
// replica that misses locally fetches the artifact from the peer that
// owns its fingerprint (rendezvous order), verifies the bytes with the
// CRC-checked decoder, and installs them locally — so a replica
// restarted with an empty artifact directory warm-starts from its peers
// instead of re-solving. Run seqavf-gateway in front of the replica set
// to route clients consistently.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/core"
	"seqavf/internal/server"
	"seqavf/internal/sweep"
)

func main() {
	listen := flag.String("listen", ":8091", "HTTP listen address")
	var designs []string
	flag.Func("design", "netlist file to load at startup (repeatable)", func(p string) error {
		designs = append(designs, p)
		return nil
	})
	loop := flag.Float64("loop", 0.3, "loop-boundary pAVF for loaded designs")
	pseudo := flag.Float64("pseudo", 0.2, "boundary pseudo-structure pAVF for loaded designs")
	workers := flag.Int("workers", 0, "evaluation workers per sweep (0 = all cores)")
	blockW := cliutil.BlockFlag()
	cache := flag.Int("cache", 0, "compiled-plan LRU capacity (0 = 8)")
	maxConc := flag.Int("max-concurrent", 0, "concurrent sweep requests before 429 (0 = all cores)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request sweep deadline")
	maxBody := flag.Int64("max-body", 8<<20, "request body size cap in bytes")
	drain := flag.Duration("drain", 15*time.Second, "graceful shutdown drain deadline")
	flight := flag.Int("flight", 0, "flight-recorder capacity: request records kept for /debug/requests (0 = 128)")
	slowMS := flag.Int("slow-sweep-ms", 0, "promote requests slower than this to the slow log (full span tree, one JSON line to stderr; 0 = off)")
	arts := cliutil.ArtifactFlags()
	ob := cliutil.ObsFlags()
	flag.Parse()

	reg := ob.Start("seqavfd")
	store, err := arts.Open(reg)
	if err != nil {
		cliutil.Exit("seqavfd", err)
	}
	srv := server.New(server.Config{
		Sweep:              sweep.Options{Workers: *workers, CacheSize: *cache, BlockSize: *blockW},
		Obs:                reg,
		MaxConcurrent:      *maxConc,
		RequestTimeout:     *timeout,
		MaxBodyBytes:       *maxBody,
		Artifacts:          store,
		FlightRecorderSize: *flight,
		SlowRequest:        time.Duration(*slowMS) * time.Millisecond,
	})

	opts := core.DefaultOptions()
	opts.LoopPAVF = *loop
	opts.PseudoPAVF = *pseudo
	seen := make(map[string]string) // design name -> netlist path
	for _, path := range designs {
		f, err := os.Open(path)
		if err != nil {
			cliutil.Exit("seqavfd", err)
		}
		d, err := srv.LoadNetlist("", f, opts)
		f.Close()
		if err != nil {
			var dup *server.DuplicateDesignError
			if errors.As(err, &dup) {
				// Two -design flags resolved to one name: refuse to start
				// rather than let requests to that name race for one slot.
				cliutil.Exit("seqavfd", fmt.Errorf(
					"duplicate design name %q: loaded from both %s and %s",
					dup.Name, seen[dup.Name], path))
			}
			cliutil.Exit("seqavfd", fmt.Errorf("%s: %w", path, err))
		}
		seen[d.Name] = path
		fmt.Fprintf(os.Stderr, "seqavfd: loaded %q (%d vertices, %d unique subterm sets)\n",
			d.Name, d.Vertices, d.Plan.UniqueSets)
	}
	if store != nil {
		fmt.Fprintf(os.Stderr, "seqavfd: artifact store %s: %d design(s) warm-started, %d solved cold (%d artifacts on disk, %d bytes)\n",
			store.Dir(),
			reg.Counter("artifact.warm_start").Load(),
			reg.Counter("artifact.cold_start").Load(),
			store.Len(), store.SizeBytes())
	}

	hs := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "seqavfd: serving %d design(s) on %s\n", len(srv.DesignNames()), *listen)
		errc <- hs.ListenAndServe()
	}()

	err = nil
	select {
	case err = <-errc:
		// Listener failed outright (bad address, port in use).
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "seqavfd: draining in-flight sweeps...")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		err = hs.Shutdown(dctx)
		cancel()
		if err != nil {
			// Drain deadline exceeded: cancel the sweeps still running so
			// their worker pools stop, then force-close connections.
			srv.Abort()
			err = errors.Join(fmt.Errorf("drain exceeded %v", *drain), hs.Close())
		}
		if ferr := ob.Finish(); err == nil {
			err = ferr
		}
		if ob.Trace {
			reg.WritePhaseSummary(os.Stderr)
		}
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	cliutil.Exit("seqavfd", err)
}
