// Command acerun executes a workload on the ACE-instrumented performance
// model and prints the measured structure AVFs and port pAVFs — step 2 of
// the paper's tool flow ("Collect pAVF data from ACE model") as a
// standalone tool. The text output doubles as a sartool pAVF table when
// filtered; -json emits the full report.
//
// Observability: -metrics FILE writes a JSON snapshot (cycles simulated,
// ACE reads/writes tallied, instructions retired/sec, per-run phase
// spans, run manifest); -trace prints phase spans to stderr; -pprof ADDR
// serves net/http/pprof.
//
// Usage:
//
//	acerun -workload lattice
//	acerun -workload md5 -json
//	acerun -workload suite -n 8 -seed 42        # suite average
//	acerun -workload md5 -metrics ace.json -trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/ace"
	"seqavf/internal/obs"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

func main() {
	wl := flag.String("workload", "lattice", cliutil.WorkloadNames+", or suite")
	file := flag.String("file", "", "assemble and run a program file instead of a named workload")
	n := flag.Int("n", 8, "suite size (workload=suite)")
	seed := flag.Uint64("seed", 1, "generator seed")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	ob := cliutil.ObsFlags()
	flag.Parse()

	reg := ob.Start("acerun")
	err := run(reg, *wl, *file, *n, *seed, *jsonOut)
	if err == nil {
		err = ob.Finish()
	}
	cliutil.Exit("acerun", err)
}

func run(reg *obs.Registry, wl, file string, n int, seed uint64, jsonOut bool) error {
	reg.SetManifest("workload", wl)
	reg.SetManifest("seed", seed)
	cfg := uarch.DefaultConfig()
	cfg.Obs = reg

	var rep *ace.Report
	var label string
	if wl == "suite" && file == "" {
		reg.SetManifest("suite_size", n)
		_, avg, err := uarch.RunSuite(workload.Suite(n, seed), cfg)
		if err != nil {
			return err
		}
		rep = avg
		label = fmt.Sprintf("average of %d synthetic workloads (seed %d)", n, seed)
	} else {
		p, err := cliutil.LoadProgram(wl, file, seed, cliutil.WorkloadSizes{})
		if err != nil {
			return err
		}
		reg.SetManifest("program", p.Name)
		res, err := uarch.Run(p, cfg)
		if err != nil {
			return err
		}
		rep = res.Report
		label = fmt.Sprintf("%s: %d instrs, %d cycles, IPC %.3f, ACE fraction %.3f",
			p.Name, res.Instrs, res.Cycles, res.IPC, res.ACEInstrFraction)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("# %s\n", label)
	fmt.Printf("# structure AVFs (Equation 3) and Little's-Law estimates\n")
	for _, name := range rep.StructNames() {
		fmt.Printf("S %-10s %.6f", name, rep.StructAVF[name])
		if little, ok := rep.LittleAVF[name]; ok {
			fmt.Printf("   # little=%.6f bits=%d", little, rep.StructBits[name])
		}
		fmt.Println()
	}
	var lines []string
	for k, v := range rep.ReadPorts {
		lines = append(lines, fmt.Sprintf("R %-14s %.6f", k, v))
	}
	for k, v := range rep.WritePorts {
		lines = append(lines, fmt.Sprintf("W %-14s %.6f", k, v))
	}
	sort.Strings(lines)
	fmt.Println("# port pAVFs")
	for _, l := range lines {
		fmt.Println(l)
	}
	return nil
}
