// Command acerun executes a workload on the ACE-instrumented performance
// model and prints the measured structure AVFs and port pAVFs — step 2 of
// the paper's tool flow ("Collect pAVF data from ACE model") as a
// standalone tool. The text output doubles as a sartool pAVF table when
// filtered; -json emits the full report.
//
// Usage:
//
//	acerun -workload lattice
//	acerun -workload md5 -json
//	acerun -workload suite -n 8 -seed 42        # suite average
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"seqavf/internal/ace"
	"seqavf/internal/isa"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

func main() {
	wl := flag.String("workload", "lattice", "lattice, md5, pchase, txn, virus, synth, or suite")
	file := flag.String("file", "", "assemble and run a program file instead of a named workload")
	n := flag.Int("n", 8, "suite size (workload=suite)")
	seed := flag.Uint64("seed", 1, "generator seed")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	if *file != "" {
		*wl = "file:" + *file
	}
	if err := run(*wl, *n, *seed, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "acerun: %v\n", err)
		os.Exit(1)
	}
}

func run(wl string, n int, seed uint64, jsonOut bool) error {
	var rep *ace.Report
	var label string
	cfg := uarch.DefaultConfig()
	single := func(p *isa.Program) error {
		res, err := uarch.Run(p, cfg)
		if err != nil {
			return err
		}
		rep = res.Report
		label = fmt.Sprintf("%s: %d instrs, %d cycles, IPC %.3f, ACE fraction %.3f",
			p.Name, res.Instrs, res.Cycles, res.IPC, res.ACEInstrFraction)
		return nil
	}
	if path, ok := strings.CutPrefix(wl, "file:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		p, err := isa.ParseAsm(path, f)
		f.Close()
		if err != nil {
			return err
		}
		if err := single(p); err != nil {
			return err
		}
		wl = "" // handled; skip the named-workload switch
	}
	switch wl {
	case "":
		// Program file already executed above.
	case "lattice":
		if err := single(workload.Lattice(12)); err != nil {
			return err
		}
	case "md5":
		if err := single(workload.MD5Like(200)); err != nil {
			return err
		}
	case "pchase":
		if err := single(workload.PointerChase(32, 8)); err != nil {
			return err
		}
	case "txn":
		if err := single(workload.TransactionMix(16, 96)); err != nil {
			return err
		}
	case "virus":
		if err := single(workload.SDCVirus(128)); err != nil {
			return err
		}
	case "synth":
		if err := single(workload.Synthetic(workload.DefaultSynth("synth", seed))); err != nil {
			return err
		}
	case "suite":
		_, avg, err := uarch.RunSuite(workload.Suite(n, seed), cfg)
		if err != nil {
			return err
		}
		rep = avg
		label = fmt.Sprintf("average of %d synthetic workloads (seed %d)", n, seed)
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("# %s\n", label)
	fmt.Printf("# structure AVFs (Equation 3) and Little's-Law estimates\n")
	for _, name := range rep.StructNames() {
		fmt.Printf("S %-10s %.6f", name, rep.StructAVF[name])
		if little, ok := rep.LittleAVF[name]; ok {
			fmt.Printf("   # little=%.6f bits=%d", little, rep.StructBits[name])
		}
		fmt.Println()
	}
	var lines []string
	for k, v := range rep.ReadPorts {
		lines = append(lines, fmt.Sprintf("R %-14s %.6f", k, v))
	}
	for k, v := range rep.WritePorts {
		lines = append(lines, fmt.Sprintf("W %-14s %.6f", k, v))
	}
	sort.Strings(lines)
	fmt.Println("# port pAVFs")
	for _, l := range lines {
		fmt.Println(l)
	}
	return nil
}
