package cliutil

import (
	"fmt"
	"os"

	"seqavf/internal/isa"
	"seqavf/internal/workload"
)

// WorkloadSizes tunes named-workload program lengths; zero fields use the
// defaults below. sfirun passes smaller sizes because netlist simulation
// is orders of magnitude slower than the performance model.
type WorkloadSizes struct {
	Lattice int // lattice grid size (default 12)
	MD5     int // md5-like block count (default 200)
}

// WorkloadNames lists the named workloads LoadProgram accepts.
const WorkloadNames = "lattice, md5, pchase, txn, virus, or synth"

// LoadProgram resolves the shared -workload/-file selection of acerun and
// sfirun: a program file is assembled when file is non-empty, otherwise
// name picks a generated workload.
func LoadProgram(name, file string, seed uint64, sz WorkloadSizes) (*isa.Program, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return isa.ParseAsm(file, f)
	}
	if sz.Lattice <= 0 {
		sz.Lattice = 12
	}
	if sz.MD5 <= 0 {
		sz.MD5 = 200
	}
	switch name {
	case "lattice":
		return workload.Lattice(sz.Lattice), nil
	case "md5":
		return workload.MD5Like(sz.MD5), nil
	case "pchase":
		return workload.PointerChase(32, 8), nil
	case "txn":
		return workload.TransactionMix(16, 96), nil
	case "virus":
		return workload.SDCVirus(128), nil
	case "synth":
		return workload.Synthetic(workload.DefaultSynth("synth", seed)), nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want %s)", name, WorkloadNames)
	}
}
