// Package cliutil factors the boilerplate shared by the seqavf command
// line tools: uniform error exits, the observability flag trio
// (-metrics/-trace/-pprof), pAVF-table I/O, and named-workload loading.
package cliutil

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux served by -pprof
	"os"

	"seqavf/internal/obs"
	"seqavf/internal/sweep"
)

// Exit prints "tool: err" to stderr and exits 1 when err is non-nil, and
// does nothing otherwise — the shared error-exit tail of every main.
func Exit(tool string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// BlockFlag registers -block, the blocked-kernel lane width shared by
// the sweep-serving CLIs (sweeprun, seqavfd): workloads evaluated
// together per plan traversal. 0 picks sweep.DefaultBlockSize; 1 forces
// the scalar per-workload path. Results are bit-identical either way.
func BlockFlag() *int {
	return flag.Int("block", 0,
		fmt.Sprintf("workloads per blocked kernel evaluation (0 = %d, 1 = scalar path)", sweep.DefaultBlockSize))
}

// Obs carries the shared observability flags. Register with ObsFlags
// before flag.Parse, then Start after it; call Finish (usually deferred
// via Exit) once the run completes to flush -metrics.
type Obs struct {
	// Metrics is the -metrics destination: a JSON snapshot of all
	// counters, gauges, histograms, phase spans, and the run manifest.
	Metrics string
	// Trace enables live span printing to stderr (-trace).
	Trace bool
	// TraceJSONL is the -trace-jsonl destination: one JSON object per
	// finished span, carrying trace/span/parent IDs, appended to a file.
	TraceJSONL string
	// Pprof is the -pprof listen address for net/http/pprof.
	Pprof string
	// Reg is the registry created by Start.
	Reg *obs.Registry

	jsonl *os.File
}

// ObsFlags registers -metrics, -trace, -trace-jsonl, and -pprof on the
// default FlagSet.
func ObsFlags() *Obs {
	o := &Obs{}
	flag.StringVar(&o.Metrics, "metrics", "", "write a JSON metrics snapshot (counters, phase timings, manifest) to this file")
	flag.BoolVar(&o.Trace, "trace", false, "print phase spans to stderr as they finish")
	flag.StringVar(&o.TraceJSONL, "trace-jsonl", "", "append finished spans as JSON lines (with trace/span IDs) to this file")
	flag.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return o
}

// Start creates the run's registry, seeds its manifest with the tool name
// and argv, attaches the -trace/-trace-jsonl sinks, and starts the -pprof
// server. The returned registry is never nil; pass it into the pipelines'
// Obs options.
func (o *Obs) Start(tool string) *obs.Registry {
	o.Reg = obs.New()
	o.Reg.SetManifest("tool", tool)
	o.Reg.SetManifest("argv", os.Args[1:])
	var sinks []obs.Sink
	if o.Trace {
		sinks = append(sinks, obs.NewTextSink(os.Stderr))
	}
	if o.TraceJSONL != "" {
		f, err := os.OpenFile(o.TraceJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			// Span export is telemetry, not the run's output: report and
			// continue rather than failing the sweep over a log path.
			fmt.Fprintf(os.Stderr, "%s: -trace-jsonl: %v (spans not exported)\n", tool, err)
		} else {
			o.jsonl = f
			sinks = append(sinks, obs.NewJSONLSink(f))
		}
	}
	if len(sinks) > 0 {
		o.Reg.SetSink(obs.MultiSink(sinks...))
	}
	if o.Pprof != "" {
		go func() {
			if err := http.ListenAndServe(o.Pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: pprof server: %v\n", tool, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "%s: pprof at http://%s/debug/pprof/\n", tool, o.Pprof)
	}
	return o.Reg
}

// Finish flushes the -metrics snapshot and closes the -trace-jsonl file
// (a no-op without those flags or before Start).
func (o *Obs) Finish() error {
	if o.jsonl != nil {
		if err := o.jsonl.Close(); err != nil {
			return fmt.Errorf("closing -trace-jsonl: %w", err)
		}
		o.jsonl = nil
	}
	if o.Reg == nil || o.Metrics == "" {
		return nil
	}
	if err := o.Reg.WriteFile(o.Metrics); err != nil {
		return fmt.Errorf("writing -metrics: %w", err)
	}
	return nil
}
