package cliutil

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"seqavf/internal/core"
)

// ReadPAVF parses the line-oriented pAVF table consumed by sartool and
// produced by acerun/designgen:
//
//	R <Struct>.<port> <pAVF_R>
//	W <Struct>.<port> <pAVF_W>
//	S <Struct> <structure AVF>
//
// Blank lines and #-comments are skipped.
func ReadPAVF(path string) (*core.Inputs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	in := core.NewInputs()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want '<R|W|S> <name> <value>'", path, lineNo)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad value %q", path, lineNo, fields[2])
		}
		switch fields[0] {
		case "R", "W":
			st, port, ok := strings.Cut(fields[1], ".")
			if !ok {
				return nil, fmt.Errorf("%s:%d: port %q not Struct.port", path, lineNo, fields[1])
			}
			sp := core.StructPort{Struct: st, Port: port}
			if fields[0] == "R" {
				in.ReadPorts[sp] = v
			} else {
				in.WritePorts[sp] = v
			}
		case "S":
			in.StructAVF[fields[1]] = v
		default:
			return nil, fmt.Errorf("%s:%d: unknown record %q", path, lineNo, fields[0])
		}
	}
	return in, sc.Err()
}

// WritePAVF renders in as a sorted pAVF table in the ReadPAVF format.
func WritePAVF(w io.Writer, in *core.Inputs) (int, error) {
	lines := make([]string, 0, len(in.ReadPorts)+len(in.WritePorts)+len(in.StructAVF))
	for sp, v := range in.ReadPorts {
		lines = append(lines, fmt.Sprintf("R %s %.6f", sp, v))
	}
	for sp, v := range in.WritePorts {
		lines = append(lines, fmt.Sprintf("W %s %.6f", sp, v))
	}
	for s, v := range in.StructAVF {
		lines = append(lines, fmt.Sprintf("S %s %.6f", s, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return 0, err
		}
	}
	return len(lines), nil
}
