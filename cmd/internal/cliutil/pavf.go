package cliutil

import (
	"io"

	"seqavf/internal/core"
	"seqavf/internal/pavfio"
)

// The pAVF table reader/writer lives in internal/pavfio so that the
// seqavfd sweep service shares the exact same hardened ingestion path as
// the CLIs (cmd/internal packages are not importable from internal/).
// These wrappers keep the historical cliutil API for the command mains.

// maxLineBytes mirrors pavfio.MaxLineBytes for the regression tests.
const maxLineBytes = pavfio.MaxLineBytes

// ParsePAVF parses a pAVF table; see pavfio.Parse for the format and the
// validation rules (finite [0,1] values, no duplicate records).
func ParsePAVF(name string, r io.Reader) (*core.Inputs, error) {
	return pavfio.Parse(name, r)
}

// ReadPAVF parses the pAVF table at path. See pavfio.Parse for the format.
func ReadPAVF(path string) (*core.Inputs, error) {
	return pavfio.ReadFile(path)
}

// NamedInputs pairs a workload name with its parsed pAVF tables.
type NamedInputs = pavfio.NamedInputs

// ReadPAVFDir parses every file in dir matching glob as a pAVF table; see
// pavfio.ReadDir (workload names must be unambiguous after extension
// stripping).
func ReadPAVFDir(dir, glob string) ([]NamedInputs, error) {
	return pavfio.ReadDir(dir, glob)
}

// WritePAVF renders in as a sorted pAVF table in the ParsePAVF format.
func WritePAVF(w io.Writer, in *core.Inputs) (int, error) {
	return pavfio.Write(w, in)
}

// NamedIntervals pairs a workload name with its parsed multi-window
// interval table.
type NamedIntervals = pavfio.NamedIntervals

// ReadIntervalDir parses every file in dir matching glob as a
// multi-window interval table; see pavfio.ReadIntervalDir (a table's
// "# workload" directive wins over its file name).
func ReadIntervalDir(dir, glob string) ([]NamedIntervals, error) {
	return pavfio.ReadIntervalDir(dir, glob)
}
