package cliutil

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"seqavf/internal/core"
)

// ParsePAVF parses the line-oriented pAVF table consumed by sartool and
// produced by acerun/designgen:
//
//	R <Struct>.<port> <pAVF_R>
//	W <Struct>.<port> <pAVF_W>
//	S <Struct> <structure AVF>
//
// Blank lines and #-comments are skipped. name labels the source in error
// messages.
func ParsePAVF(name string, r io.Reader) (*core.Inputs, error) {
	in := core.NewInputs()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want '<R|W|S> <name> <value>'", name, lineNo)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad value %q", name, lineNo, fields[2])
		}
		switch fields[0] {
		case "R", "W":
			st, port, ok := strings.Cut(fields[1], ".")
			if !ok {
				return nil, fmt.Errorf("%s:%d: port %q not Struct.port", name, lineNo, fields[1])
			}
			sp := core.StructPort{Struct: st, Port: port}
			if fields[0] == "R" {
				in.ReadPorts[sp] = v
			} else {
				in.WritePorts[sp] = v
			}
		case "S":
			in.StructAVF[fields[1]] = v
		default:
			return nil, fmt.Errorf("%s:%d: unknown record %q", name, lineNo, fields[0])
		}
	}
	return in, sc.Err()
}

// ReadPAVF parses the pAVF table at path. See ParsePAVF for the format.
func ReadPAVF(path string) (*core.Inputs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParsePAVF(path, f)
}

// NamedInputs pairs a workload name with its parsed pAVF tables.
type NamedInputs struct {
	Name   string
	Inputs *core.Inputs
}

// ReadPAVFDir parses every file in dir matching glob (filepath.Match
// syntax) as a pAVF table, sorted by file name. The workload name is the
// file base without its extension. An empty match set is an error — a
// sweep over zero workloads is almost always a mistyped glob.
func ReadPAVFDir(dir, glob string) ([]NamedInputs, error) {
	matches, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		return nil, fmt.Errorf("bad glob %q: %w", glob, err)
	}
	sort.Strings(matches)
	var out []NamedInputs
	for _, path := range matches {
		if fi, err := os.Stat(path); err != nil || fi.IsDir() {
			continue
		}
		in, err := ReadPAVF(path)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(path)
		name := strings.TrimSuffix(base, filepath.Ext(base))
		out = append(out, NamedInputs{Name: name, Inputs: in})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no pAVF tables match %s in %s", glob, dir)
	}
	return out, nil
}

// WritePAVF renders in as a sorted pAVF table in the ParsePAVF format.
func WritePAVF(w io.Writer, in *core.Inputs) (int, error) {
	lines := make([]string, 0, len(in.ReadPorts)+len(in.WritePorts)+len(in.StructAVF))
	for sp, v := range in.ReadPorts {
		lines = append(lines, fmt.Sprintf("R %s %.6f", sp, v))
	}
	for sp, v := range in.WritePorts {
		lines = append(lines, fmt.Sprintf("W %s %.6f", sp, v))
	}
	for s, v := range in.StructAVF {
		lines = append(lines, fmt.Sprintf("S %s %.6f", s, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return 0, err
		}
	}
	return len(lines), nil
}
