package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"

	"seqavf/internal/artifact"
	"seqavf/internal/core"
	"seqavf/internal/obs"
)

// Artifacts carries the shared artifact-store flags: -artifacts selects
// the store directory (empty disables persistence entirely) and
// -artifacts-max bounds its disk usage.
type Artifacts struct {
	Dir      string
	MaxBytes int64
}

// ArtifactFlags registers -artifacts and -artifacts-max on the default
// FlagSet.
func ArtifactFlags() *Artifacts {
	a := &Artifacts{}
	flag.StringVar(&a.Dir, "artifacts", "", "artifact store directory: persist solved results and compiled plans, keyed by design fingerprint (empty = no persistence)")
	flag.Int64Var(&a.MaxBytes, "artifacts-max", 1<<30, "artifact store disk bound in bytes; least-recently-used artifacts are evicted beyond it (0 = unbounded)")
	return a
}

// Open opens the configured store, or returns nil when -artifacts was
// not given.
func (a *Artifacts) Open(reg *obs.Registry) (*artifact.Store, error) {
	if a.Dir == "" {
		return nil, nil
	}
	return artifact.Open(a.Dir, artifact.Options{MaxBytes: a.MaxBytes, Obs: reg})
}

// SolveWithStore produces a solved result for analyzer a under inputs
// in, consulting st first: on a fingerprint hit the stored closed forms
// are decoded and re-evaluated against in — skipping the solve entirely
// — and on a miss the design is solved cold and persisted back. The
// returned bool reports a warm start. st may be nil (always cold, never
// persisted). A present-but-unreadable artifact (version skew,
// corruption) is reported to stderr and regenerated, never fatal:
// warm-start is an optimization, not a correctness dependency. ctx
// carries the run's trace state: the restore or solve spans nest under
// its current span.
func SolveWithStore(ctx context.Context, tool string, st *artifact.Store, a *core.Analyzer, in *core.Inputs, reg *obs.Registry) (*core.Result, bool, error) {
	if st == nil {
		res, err := a.SolveContext(ctx, in)
		return res, false, err
	}
	res, _, err := st.GetContext(ctx, a)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: artifact store: %v (solving cold and regenerating)\n", tool, err)
	}
	if res != nil {
		// The stored result already carries the evaluation of its own
		// inputs; only a different table needs plugging back in.
		if !res.Inputs.Equal(in) {
			if err := res.Reevaluate(in); err != nil {
				return nil, false, err
			}
		}
		reg.Counter("artifact.warm_start").Inc()
		return res, true, nil
	}
	reg.Counter("artifact.cold_start").Inc()
	res, err = a.SolveContext(ctx, in)
	if err != nil {
		return nil, false, err
	}
	if err := st.Put(res, nil); err != nil {
		fmt.Fprintf(os.Stderr, "%s: artifact store: persisting solve: %v\n", tool, err)
	}
	return res, false, nil
}
