package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"seqavf/internal/artifact"
	"seqavf/internal/core"
	"seqavf/internal/obs"
)

// Artifacts carries the shared artifact-store flags: -artifacts selects
// the store directory (empty disables persistence entirely),
// -artifacts-max bounds its disk usage, and -peers enables the fleet
// pull-through tier — on a local miss the store fetches the artifact
// from the owning peer before solving cold.
type Artifacts struct {
	Dir         string
	MaxBytes    int64
	Peers       *Replicas
	PeerTimeout time.Duration
}

// ArtifactFlags registers -artifacts, -artifacts-max, -peers, and
// -peer-timeout on the default FlagSet.
func ArtifactFlags() *Artifacts {
	a := &Artifacts{}
	flag.StringVar(&a.Dir, "artifacts", "", "artifact store directory: persist solved results and compiled plans, keyed by design fingerprint (empty = no persistence)")
	flag.Int64Var(&a.MaxBytes, "artifacts-max", 1<<30, "artifact store disk bound in bytes; least-recently-used artifacts are evicted beyond it (0 = unbounded)")
	a.Peers = ReplicasFlag("peers", "fleet peer base URLs (repeatable, comma-separated): on a local artifact miss, pull the artifact from the owning peer (requires -artifacts)")
	flag.DurationVar(&a.PeerTimeout, "peer-timeout", 5*time.Second, "per-fetch timeout for -peers pull-through requests")
	return a
}

// Open opens the configured store, or returns nil when -artifacts was
// not given.
func (a *Artifacts) Open(reg *obs.Registry) (*artifact.Store, error) {
	peers := 0
	if a.Peers != nil {
		peers = len(a.Peers.URLs)
	}
	if a.Dir == "" {
		if peers > 0 {
			return nil, errors.New("-peers requires -artifacts (the pull-through tier installs into the local store)")
		}
		return nil, nil
	}
	opts := artifact.Options{MaxBytes: a.MaxBytes, Obs: reg}
	if peers > 0 {
		opts.Remote = &artifact.Remote{
			Peers:  a.Peers.URLs,
			Client: &http.Client{Timeout: a.PeerTimeout},
		}
	}
	return artifact.Open(a.Dir, opts)
}

// Disposition reports which path SolveWithStore took to produce its
// result.
type Disposition struct {
	// Kind is "cold" (full solve), "warm" (fingerprint hit, closed forms
	// restored), or "incremental" (fingerprint miss, but a prior solve of
	// the same design name seeded an ECO re-solve).
	Kind string
	// Incremental carries the reuse statistics when Kind is
	// "incremental"; nil otherwise.
	Incremental *core.Incremental
}

// Warm reports whether the solve was skipped outright.
func (d Disposition) Warm() bool { return d.Kind == "warm" }

// SolveWithStore produces a solved result for analyzer a under inputs
// in, consulting st first: on a fingerprint hit the stored closed forms
// are decoded and re-evaluated against in — skipping the solve entirely.
// On a miss, a prior artifact for the same design *name* (left by an
// earlier Put, found via the store's head pointer) seeds an incremental
// re-solve that walks only the FUBs the edit dirtied; only when no prior
// exists is the design solved cold. Either way the fresh result is
// persisted back. st may be nil (always cold, never persisted). A
// present-but-unreadable artifact (version skew, corruption) is reported
// to stderr and regenerated, never fatal: warm and incremental starts
// are optimizations, not correctness dependencies. ctx carries the run's
// trace state: the restore or solve spans nest under its current span.
func SolveWithStore(ctx context.Context, tool string, st *artifact.Store, a *core.Analyzer, in *core.Inputs, reg *obs.Registry) (*core.Result, Disposition, error) {
	if st == nil {
		res, err := a.SolveContext(ctx, in)
		return res, Disposition{Kind: "cold"}, err
	}
	res, _, err := st.GetContext(ctx, a)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: artifact store: %v (solving cold and regenerating)\n", tool, err)
	}
	if res != nil {
		// The stored result already carries the evaluation of its own
		// inputs; only a different table needs plugging back in.
		if !res.Inputs.Equal(in) {
			if err := res.Reevaluate(in); err != nil {
				return nil, Disposition{}, err
			}
		}
		reg.Counter("artifact.warm_start").Inc()
		return res, Disposition{Kind: "warm"}, nil
	}
	prior, perr := st.Prior(ctx, a.G.Design.Name)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "%s: artifact store: prior state: %v (solving cold)\n", tool, perr)
	}
	if prior != nil {
		res, ist, rerr := a.ResolveIncrementalContext(ctx, in, prior)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "%s: incremental re-solve failed: %v (solving cold)\n", tool, rerr)
		} else {
			reg.Counter("artifact.incremental_start").Inc()
			if err := st.Put(res, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: artifact store: persisting solve: %v\n", tool, err)
			}
			return res, Disposition{Kind: "incremental", Incremental: ist}, nil
		}
	}
	reg.Counter("artifact.cold_start").Inc()
	res, err = a.SolveContext(ctx, in)
	if err != nil {
		return nil, Disposition{}, err
	}
	if err := st.Put(res, nil); err != nil {
		fmt.Fprintf(os.Stderr, "%s: artifact store: persisting solve: %v\n", tool, err)
	}
	return res, Disposition{Kind: "cold"}, nil
}
