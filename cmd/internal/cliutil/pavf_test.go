package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqavf/internal/core"
)

func TestPAVFRoundTrip(t *testing.T) {
	in := core.NewInputs()
	in.ReadPorts[core.StructPort{Struct: "ROB", Port: "rd0"}] = 0.25
	in.WritePorts[core.StructPort{Struct: "ROB", Port: "wr0"}] = 0.125
	in.StructAVF["ROB"] = 0.5

	var sb strings.Builder
	n, err := WritePAVF(&sb, in)
	if err != nil {
		t.Fatalf("WritePAVF: %v", err)
	}
	if n != 3 {
		t.Fatalf("WritePAVF wrote %d lines, want 3", n)
	}
	path := filepath.Join(t.TempDir(), "pavf.txt")
	if err := os.WriteFile(path, []byte("# comment\n\n"+sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPAVF(path)
	if err != nil {
		t.Fatalf("ReadPAVF: %v", err)
	}
	if v := got.ReadPorts[core.StructPort{Struct: "ROB", Port: "rd0"}]; v != 0.25 {
		t.Errorf("read port = %v, want 0.25", v)
	}
	if v := got.WritePorts[core.StructPort{Struct: "ROB", Port: "wr0"}]; v != 0.125 {
		t.Errorf("write port = %v, want 0.125", v)
	}
	if v := got.StructAVF["ROB"]; v != 0.5 {
		t.Errorf("struct AVF = %v, want 0.5", v)
	}
}

func TestReadPAVFErrors(t *testing.T) {
	for name, body := range map[string]string{
		"short line": "R only\n",
		"bad value":  "R ROB.rd0 zero\n",
		"bad port":   "R ROBrd0 0.5\n",
		"bad record": "X ROB.rd0 0.5\n",
	} {
		path := filepath.Join(t.TempDir(), "bad.txt")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadPAVF(path); err == nil {
			t.Errorf("%s: ReadPAVF accepted %q", name, body)
		}
	}
}

// TestParsePAVFRejectsBadValues: AVFs are probabilities. Every non-finite
// or out-of-[0,1] value must be rejected with a file:line error — a single
// accepted NaN poisons the capped sum of every node the port reaches.
func TestParsePAVFRejectsBadValues(t *testing.T) {
	cases := []struct {
		name  string
		table string
		want  string // substring of the error
	}{
		{"NaN read", "R IQ.rd NaN\n", "IQ-nan:1"},
		{"NaN struct", "S IQ nan\n", "IQ-nan:1"},
		{"+Inf", "W IQ.wr +Inf\n", "IQ-nan:1"},
		{"-Inf", "R IQ.rd -Inf\n", "IQ-nan:1"},
		{"negative", "R IQ.rd -0.001\n", "IQ-nan:1"},
		{"above one", "# ok\nW IQ.wr 1.000001\n", "IQ-nan:2"},
		{"huge exponent", "S IQ 1e300\n", "IQ-nan:1"},
		{"negative zero ok", "R IQ.rd -0.0\n", ""},
		{"exact one ok", "R IQ.rd 1\nW IQ.wr 0\nS IQ 1.0\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePAVF("IQ-nan", strings.NewReader(tc.table))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("rejected valid table %q: %v", tc.table, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted %q", tc.table)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not carry file:line %q", err, tc.want)
			}
		})
	}
}

// TestParsePAVFRejectsDuplicates: a port or structure measured twice in one
// table is a merge mistake, not a legitimate override.
func TestParsePAVFRejectsDuplicates(t *testing.T) {
	cases := []struct {
		name  string
		table string
	}{
		{"duplicate R", "R IQ.rd 0.5\nR IQ.rd 0.25\n"},
		{"duplicate W", "W IQ.wr 0.5\n# noise\nW IQ.wr 0.5\n"},
		{"duplicate S", "S IQ 0.5\nS IQ 0.5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePAVF("dup", strings.NewReader(tc.table))
			if err == nil {
				t.Fatalf("accepted table with %s", tc.name)
			}
			if !strings.Contains(err.Error(), "duplicate") || !strings.Contains(err.Error(), "line 1") {
				t.Fatalf("error %q does not report the duplicate and its first line", err)
			}
		})
	}
	// Same port name under different record kinds is legitimate: R and W
	// index different tables, and S shares the struct's bare name.
	if _, err := ParsePAVF("ok", strings.NewReader("R IQ.rd 0.5\nW IQ.rd 0.5\nS IQ.rd 0.5\n")); err != nil {
		t.Fatalf("rejected distinct record kinds for one name: %v", err)
	}
}

// TestParsePAVFLongLines: table lines past bufio.Scanner's 64KB default
// must parse (machine-generated hierarchical port names get long), and
// lines past the 4MB cap must fail with an error naming the file — not
// the opaque "token too long".
func TestParsePAVFLongLines(t *testing.T) {
	longPort := "TOP." + strings.Repeat("x", 100*1024)
	in, err := ParsePAVF("long", strings.NewReader("R "+longPort+" 0.5\n"))
	if err != nil {
		t.Fatalf("100KB line rejected: %v", err)
	}
	if len(in.ReadPorts) != 1 {
		t.Fatalf("100KB line parsed to %d ports, want 1", len(in.ReadPorts))
	}

	huge := "R TOP." + strings.Repeat("y", maxLineBytes) + " 0.5\n"
	_, err = ParsePAVF("huge", strings.NewReader(huge))
	if err == nil {
		t.Fatal("accepted a line beyond the scanner cap")
	}
	if !strings.Contains(err.Error(), "huge:") || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversize-line error %q does not name the file and the limit", err)
	}
}

// TestReadPAVFDirNameCollision: md5.pavf and md5.txt both strip to
// workload "md5"; the sweep must refuse the ambiguity instead of emitting
// two rows with one name.
func TestReadPAVFDirNameCollision(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"md5.pavf", "md5.txt", "zlib.pavf"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("R IQ.rd 0.5\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := ReadPAVFDir(dir, "*")
	if err == nil {
		t.Fatal("ReadPAVFDir accepted two files mapping to workload \"md5\"")
	}
	for _, want := range []string{"md5.pavf", "md5.txt", `"md5"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("collision error %q does not name %s", err, want)
		}
	}
	// Disambiguated by the glob, the same directory is fine.
	got, err := ReadPAVFDir(dir, "*.pavf")
	if err != nil {
		t.Fatalf("ReadPAVFDir with disambiguating glob: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d workloads, want 2", len(got))
	}
}

func TestReadPAVFDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Written out of sorted order on purpose; named after workloads.
	write("zlib.pavf", "R IQ.rd 0.75\n")
	write("bzip2.pavf", "R IQ.rd 0.25\n")
	write("notes.txt", "not a pavf table\n")

	got, err := ReadPAVFDir(dir, "*.pavf")
	if err != nil {
		t.Fatalf("ReadPAVFDir: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d workloads, want 2", len(got))
	}
	if got[0].Name != "bzip2" || got[1].Name != "zlib" {
		t.Errorf("workloads not sorted by name: %q, %q", got[0].Name, got[1].Name)
	}
	sp := core.StructPort{Struct: "IQ", Port: "rd"}
	if got[0].Inputs.ReadPorts[sp] != 0.25 || got[1].Inputs.ReadPorts[sp] != 0.75 {
		t.Errorf("workload inputs mixed up: %v, %v",
			got[0].Inputs.ReadPorts[sp], got[1].Inputs.ReadPorts[sp])
	}

	if _, err := ReadPAVFDir(dir, "*.nope"); err == nil {
		t.Error("ReadPAVFDir accepted a glob matching nothing")
	}
	write("broken.pavf", "R malformed\n")
	if _, err := ReadPAVFDir(dir, "*.pavf"); err == nil {
		t.Error("ReadPAVFDir accepted a directory with a malformed table")
	}
}

func TestLoadProgramUnknown(t *testing.T) {
	if _, err := LoadProgram("nope", "", 1, WorkloadSizes{}); err == nil {
		t.Error("LoadProgram accepted unknown workload")
	}
}
