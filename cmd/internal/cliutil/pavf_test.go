package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqavf/internal/core"
)

func TestPAVFRoundTrip(t *testing.T) {
	in := core.NewInputs()
	in.ReadPorts[core.StructPort{Struct: "ROB", Port: "rd0"}] = 0.25
	in.WritePorts[core.StructPort{Struct: "ROB", Port: "wr0"}] = 0.125
	in.StructAVF["ROB"] = 0.5

	var sb strings.Builder
	n, err := WritePAVF(&sb, in)
	if err != nil {
		t.Fatalf("WritePAVF: %v", err)
	}
	if n != 3 {
		t.Fatalf("WritePAVF wrote %d lines, want 3", n)
	}
	path := filepath.Join(t.TempDir(), "pavf.txt")
	if err := os.WriteFile(path, []byte("# comment\n\n"+sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPAVF(path)
	if err != nil {
		t.Fatalf("ReadPAVF: %v", err)
	}
	if v := got.ReadPorts[core.StructPort{Struct: "ROB", Port: "rd0"}]; v != 0.25 {
		t.Errorf("read port = %v, want 0.25", v)
	}
	if v := got.WritePorts[core.StructPort{Struct: "ROB", Port: "wr0"}]; v != 0.125 {
		t.Errorf("write port = %v, want 0.125", v)
	}
	if v := got.StructAVF["ROB"]; v != 0.5 {
		t.Errorf("struct AVF = %v, want 0.5", v)
	}
}

func TestReadPAVFErrors(t *testing.T) {
	for name, body := range map[string]string{
		"short line": "R only\n",
		"bad value":  "R ROB.rd0 zero\n",
		"bad port":   "R ROBrd0 0.5\n",
		"bad record": "X ROB.rd0 0.5\n",
	} {
		path := filepath.Join(t.TempDir(), "bad.txt")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadPAVF(path); err == nil {
			t.Errorf("%s: ReadPAVF accepted %q", name, body)
		}
	}
}

func TestReadPAVFDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Written out of sorted order on purpose; named after workloads.
	write("zlib.pavf", "R IQ.rd 0.75\n")
	write("bzip2.pavf", "R IQ.rd 0.25\n")
	write("notes.txt", "not a pavf table\n")

	got, err := ReadPAVFDir(dir, "*.pavf")
	if err != nil {
		t.Fatalf("ReadPAVFDir: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d workloads, want 2", len(got))
	}
	if got[0].Name != "bzip2" || got[1].Name != "zlib" {
		t.Errorf("workloads not sorted by name: %q, %q", got[0].Name, got[1].Name)
	}
	sp := core.StructPort{Struct: "IQ", Port: "rd"}
	if got[0].Inputs.ReadPorts[sp] != 0.25 || got[1].Inputs.ReadPorts[sp] != 0.75 {
		t.Errorf("workload inputs mixed up: %v, %v",
			got[0].Inputs.ReadPorts[sp], got[1].Inputs.ReadPorts[sp])
	}

	if _, err := ReadPAVFDir(dir, "*.nope"); err == nil {
		t.Error("ReadPAVFDir accepted a glob matching nothing")
	}
	write("broken.pavf", "R malformed\n")
	if _, err := ReadPAVFDir(dir, "*.pavf"); err == nil {
		t.Error("ReadPAVFDir accepted a directory with a malformed table")
	}
}

func TestLoadProgramUnknown(t *testing.T) {
	if _, err := LoadProgram("nope", "", 1, WorkloadSizes{}); err == nil {
		t.Error("LoadProgram accepted unknown workload")
	}
}
