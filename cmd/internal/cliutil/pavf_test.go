package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqavf/internal/core"
)

func TestPAVFRoundTrip(t *testing.T) {
	in := core.NewInputs()
	in.ReadPorts[core.StructPort{Struct: "ROB", Port: "rd0"}] = 0.25
	in.WritePorts[core.StructPort{Struct: "ROB", Port: "wr0"}] = 0.125
	in.StructAVF["ROB"] = 0.5

	var sb strings.Builder
	n, err := WritePAVF(&sb, in)
	if err != nil {
		t.Fatalf("WritePAVF: %v", err)
	}
	if n != 3 {
		t.Fatalf("WritePAVF wrote %d lines, want 3", n)
	}
	path := filepath.Join(t.TempDir(), "pavf.txt")
	if err := os.WriteFile(path, []byte("# comment\n\n"+sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPAVF(path)
	if err != nil {
		t.Fatalf("ReadPAVF: %v", err)
	}
	if v := got.ReadPorts[core.StructPort{Struct: "ROB", Port: "rd0"}]; v != 0.25 {
		t.Errorf("read port = %v, want 0.25", v)
	}
	if v := got.WritePorts[core.StructPort{Struct: "ROB", Port: "wr0"}]; v != 0.125 {
		t.Errorf("write port = %v, want 0.125", v)
	}
	if v := got.StructAVF["ROB"]; v != 0.5 {
		t.Errorf("struct AVF = %v, want 0.5", v)
	}
}

func TestReadPAVFErrors(t *testing.T) {
	for name, body := range map[string]string{
		"short line": "R only\n",
		"bad value":  "R ROB.rd0 zero\n",
		"bad port":   "R ROBrd0 0.5\n",
		"bad record": "X ROB.rd0 0.5\n",
	} {
		path := filepath.Join(t.TempDir(), "bad.txt")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadPAVF(path); err == nil {
			t.Errorf("%s: ReadPAVF accepted %q", name, body)
		}
	}
}

func TestLoadProgramUnknown(t *testing.T) {
	if _, err := LoadProgram("nope", "", 1, WorkloadSizes{}); err == nil {
		t.Error("LoadProgram accepted unknown workload")
	}
}
