package cliutil

import (
	"reflect"
	"testing"
)

func TestReplicasAccumulates(t *testing.T) {
	r := &Replicas{seen: make(map[string]bool)}
	if err := r.Set("a:1,b:2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("https://c:3"); err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "https://c:3"}
	if !reflect.DeepEqual(r.URLs, want) {
		t.Fatalf("URLs = %v, want %v", r.URLs, want)
	}
	if r.String() != "http://a:1,http://b:2,https://c:3" {
		t.Fatalf("String() = %q", r.String())
	}
	// Duplicates are rejected across occurrences, not just within one.
	if err := r.Set("http://a:1"); err == nil {
		t.Fatal("cross-occurrence duplicate accepted")
	}
	if err := r.Set("ftp://x"); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestArtifactsPeersRequireDir(t *testing.T) {
	a := &Artifacts{Peers: &Replicas{seen: make(map[string]bool)}}
	if err := a.Peers.Set("peer:8091"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Open(nil); err == nil {
		t.Fatal("-peers without -artifacts accepted")
	}
	a.Dir = t.TempDir()
	st, err := a.Open(nil)
	if err != nil || st == nil {
		t.Fatalf("Open with dir+peers = (%v, %v)", st, err)
	}
}
