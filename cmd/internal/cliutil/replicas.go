package cliutil

import (
	"flag"
	"fmt"
	"strings"

	"seqavf/internal/fleet"
)

// Replicas is a flag.Value collecting replica base URLs: the flag is
// repeatable, each occurrence may carry a comma-separated list, and
// entries are normalized (explicit scheme, no trailing slash) and
// deduplicated across occurrences — the same replica given twice would
// double its share of the hash space.
type Replicas struct {
	URLs []string
	seen map[string]bool
}

// ReplicasFlag registers a replica-list flag with the given name on the
// default FlagSet and returns its accumulator.
func ReplicasFlag(name, usage string) *Replicas {
	r := &Replicas{seen: make(map[string]bool)}
	flag.Var(r, name, usage)
	return r
}

// String renders the accumulated list (flag.Value).
func (r *Replicas) String() string {
	if r == nil {
		return ""
	}
	return strings.Join(r.URLs, ",")
}

// Set parses one flag occurrence (flag.Value).
func (r *Replicas) Set(value string) error {
	urls, err := fleet.ParseReplicaList(value)
	if err != nil {
		return err
	}
	for _, u := range urls {
		if r.seen[u] {
			return fmt.Errorf("duplicate replica %q", u)
		}
		r.seen[u] = true
		r.URLs = append(r.URLs, u)
	}
	return nil
}
