package cliutil

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"seqavf/internal/core"
)

// FuzzParsePavfTable throws arbitrary bytes at the pAVF table parser: it
// must never panic, any table it accepts must carry only finite values in
// [0,1] (the solver's capped sums assume probabilities — one NaN poisons
// every downstream node), and accepted tables must survive a
// write/re-parse round trip with the same port keys and (up to the %.6f
// rendering) the same values.
func FuzzParsePavfTable(f *testing.F) {
	f.Add("R IQ.rd 0.5\nW IQ.wr 0.25\nS IQ 0.9\n")
	f.Add("# comment\n\nR A.b 1\n")
	f.Add("R a.b.c -0.001\nS x NaN\nS y +Inf\n")
	f.Add("R .p 0.5\nS # 2\n")
	f.Add("bogus line\n")
	f.Add("R noport 0.5\n")
	f.Add("R a.b not-a-number\n")
	f.Add("R a.b 0.5\nR a.b 0.5\n")
	f.Add("S s 1e308\nS t -0\n")
	f.Fuzz(func(t *testing.T, table string) {
		in, err := ParsePAVF("fuzz", strings.NewReader(table))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		checkRange := func(what string, v float64) {
			t.Helper()
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
				t.Fatalf("accepted table yields %s value %v outside [0,1]\ntable:\n%s", what, v, table)
			}
		}
		for sp, v := range in.ReadPorts {
			checkRange("R "+sp.String(), v)
		}
		for sp, v := range in.WritePorts {
			checkRange("W "+sp.String(), v)
		}
		for s, v := range in.StructAVF {
			checkRange("S "+s, v)
		}
		var buf bytes.Buffer
		n, err := WritePAVF(&buf, in)
		if err != nil {
			t.Fatalf("WritePAVF failed on parsed inputs: %v", err)
		}
		if want := len(in.ReadPorts) + len(in.WritePorts) + len(in.StructAVF); n != want {
			t.Fatalf("WritePAVF wrote %d lines for %d entries", n, want)
		}
		back, err := ParsePAVF("roundtrip", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written table failed: %v\ntable:\n%s", err, buf.String())
		}
		comparePorts(t, "read", in.ReadPorts, back.ReadPorts)
		comparePorts(t, "write", in.WritePorts, back.WritePorts)
		if len(back.StructAVF) != len(in.StructAVF) {
			t.Fatalf("struct AVFs: %d entries became %d", len(in.StructAVF), len(back.StructAVF))
		}
		for s, v := range in.StructAVF {
			got, ok := back.StructAVF[s]
			if !ok {
				t.Fatalf("struct %q lost in round trip", s)
			}
			checkClose(t, "S "+s, v, got)
		}
	})
}

func comparePorts(t *testing.T, kind string, want, got map[core.StructPort]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s ports: %d entries became %d", kind, len(want), len(got))
	}
	for sp, v := range want {
		g, ok := got[sp]
		if !ok {
			t.Fatalf("%s port %v lost in round trip", kind, sp)
		}
		checkClose(t, kind+" "+sp.Struct+"."+sp.Port, v, g)
	}
}

// checkClose compares a value against its %.6f-rendered round trip. All
// accepted values are finite in [0,1], so six fractional digits bound the
// absolute error.
func checkClose(t *testing.T, what string, want, got float64) {
	t.Helper()
	if math.Abs(got-want) > 5e-7 {
		t.Fatalf("%s: %v became %v after round trip", what, want, got)
	}
}
