// Command designgen generates a XeonLike synthetic design and writes its
// netlist (and optionally its port-AVF binding table) in the textual
// formats consumed by sartool.
//
// Observability: -metrics FILE writes a JSON snapshot (generation phase
// spans, perf-model counters when -pavf is used, run manifest); -trace
// prints phase spans to stderr; -pprof ADDR serves net/http/pprof.
//
// Usage:
//
//	designgen -seed 2015 -o design.nl -pavf pavf.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/design"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 2027, "generator seed")
	fubs := flag.Int("fubs", 32, "number of FUBs")
	out := flag.String("o", "", "netlist output file (default stdout)")
	pavf := flag.String("pavf", "", "also write a pAVF table measured on the Lattice workload")
	stats := flag.Bool("stats", false, "print bit-graph statistics to stderr")
	ob := cliutil.ObsFlags()
	flag.Parse()

	reg := ob.Start("designgen")
	err := run(reg, *seed, *fubs, *out, *pavf, *stats)
	if err == nil {
		err = ob.Finish()
	}
	cliutil.Exit("designgen", err)
}

func run(reg *obs.Registry, seed uint64, fubs int, out, pavfPath string, stats bool) error {
	reg.SetManifest("seed", seed)
	reg.SetManifest("fubs", fubs)
	gsp := reg.StartSpan("generate")
	cfg := design.DefaultConfig(seed)
	cfg.NumFubs = fubs
	gen, err := design.Generate(cfg)
	if err != nil {
		return err
	}
	gsp.End()
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := netlist.Write(w, gen.Design); err != nil {
		return err
	}
	fsp := reg.StartSpan("flatten")
	fd, err := netlist.Flatten(gen.Design)
	if err != nil {
		return err
	}
	fsp.SetAttr("nodes", fd.NumNodes())
	fsp.End()
	fmt.Fprintf(os.Stderr, "designgen: %d FUBs, %d structures, %d flat nodes\n",
		len(gen.Design.Fubs), len(gen.Design.Structures), fd.NumNodes())
	if stats {
		g, err := graph.Build(fd)
		if err != nil {
			return err
		}
		graph.Measure(g).WriteText(os.Stderr)
	}

	if pavfPath == "" {
		return nil
	}
	psp := reg.StartSpan("measure_pavf")
	ucfg := uarch.DefaultConfig()
	ucfg.Obs = reg
	perf, err := uarch.Run(workload.Lattice(12), ucfg)
	if err != nil {
		return err
	}
	in, err := gen.Inputs(perf.Report)
	if err != nil {
		return err
	}
	psp.End()
	f, err := os.Create(pavfPath)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := cliutil.WritePAVF(f, in)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "designgen: wrote %d pAVF entries to %s\n", n, pavfPath)
	return nil
}
