// Command designgen generates a XeonLike synthetic design and writes its
// netlist (and optionally its port-AVF binding table) in the textual
// formats consumed by sartool.
//
// Usage:
//
//	designgen -seed 2015 -o design.nl -pavf pavf.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"seqavf/internal/design"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 2027, "generator seed")
	fubs := flag.Int("fubs", 32, "number of FUBs")
	out := flag.String("o", "", "netlist output file (default stdout)")
	pavf := flag.String("pavf", "", "also write a pAVF table measured on the Lattice workload")
	stats := flag.Bool("stats", false, "print bit-graph statistics to stderr")
	flag.Parse()

	if err := run(*seed, *fubs, *out, *pavf, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "designgen: %v\n", err)
		os.Exit(1)
	}
}

func run(seed uint64, fubs int, out, pavfPath string, stats bool) error {
	cfg := design.DefaultConfig(seed)
	cfg.NumFubs = fubs
	gen, err := design.Generate(cfg)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := netlist.Write(w, gen.Design); err != nil {
		return err
	}
	fd, err := netlist.Flatten(gen.Design)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "designgen: %d FUBs, %d structures, %d flat nodes\n",
		len(gen.Design.Fubs), len(gen.Design.Structures), fd.NumNodes())
	if stats {
		g, err := graph.Build(fd)
		if err != nil {
			return err
		}
		graph.Measure(g).WriteText(os.Stderr)
	}

	if pavfPath == "" {
		return nil
	}
	perf, err := uarch.Run(workload.Lattice(12), uarch.DefaultConfig())
	if err != nil {
		return err
	}
	in, err := gen.Inputs(perf.Report)
	if err != nil {
		return err
	}
	f, err := os.Create(pavfPath)
	if err != nil {
		return err
	}
	defer f.Close()
	// Stable output order.
	var lines []string
	for sp, v := range in.ReadPorts {
		lines = append(lines, fmt.Sprintf("R %s %.6f", sp, v))
	}
	for sp, v := range in.WritePorts {
		lines = append(lines, fmt.Sprintf("W %s %.6f", sp, v))
	}
	for s, v := range in.StructAVF {
		lines = append(lines, fmt.Sprintf("S %s %.6f", s, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(f, l)
	}
	fmt.Fprintf(os.Stderr, "designgen: wrote %d pAVF entries to %s\n", len(lines), pavfPath)
	return nil
}
