// Command sfirun runs a statistical fault injection campaign against the
// tinycore netlist CPU executing a named workload — the brute-force
// baseline of §3.1.
//
// Observability: -metrics FILE writes a JSON snapshot (injections run,
// error/unknown/masked tallies, simulated cycles, node evaluations,
// sims/sec, campaign phase spans, run manifest); -trace prints phase
// spans to stderr; -pprof ADDR serves net/http/pprof.
//
// Usage:
//
//	sfirun -workload md5 -inject 6 -window 2000
//	sfirun -workload lattice -inject 2
//	sfirun -workload md5 -metrics sfi.json -pprof localhost:6060
package main

import (
	"flag"
	"fmt"
	"time"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/obs"
	"seqavf/internal/sfi"
	"seqavf/internal/tinycore"
)

func main() {
	wl := flag.String("workload", "md5", cliutil.WorkloadNames)
	file := flag.String("file", "", "assemble and run a program file instead of a named workload")
	inject := flag.Int("inject", 4, "injections per sequential bit")
	window := flag.Int("window", 2000, "propagation window (cycles)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 1, "parallel workers")
	ob := cliutil.ObsFlags()
	flag.Parse()

	reg := ob.Start("sfirun")
	err := run(reg, *wl, *file, *inject, *window, *seed, *workers)
	if err == nil {
		err = ob.Finish()
	}
	cliutil.Exit("sfirun", err)
}

func run(reg *obs.Registry, wl, file string, inject, window int, seed uint64, workers int) error {
	// Netlist simulation is orders of magnitude slower than the perf
	// model, so the named workloads shrink (lattice 6, md5 60 blocks).
	p, err := cliutil.LoadProgram(wl, file, seed, cliutil.WorkloadSizes{Lattice: 6, MD5: 60})
	if err != nil {
		return err
	}
	reg.SetManifest("workload", p.Name)
	reg.SetManifest("seed", seed)
	reg.SetManifest("injections_per_bit", inject)
	reg.SetManifest("window", window)
	reg.SetManifest("workers", workers)
	m, err := tinycore.New(p)
	if err != nil {
		return err
	}
	cfg := sfi.DefaultConfig()
	cfg.InjectionsPerBit = inject
	cfg.Window = window
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Obs = reg

	start := time.Now()
	res, err := sfi.Run(m.Sim, sfi.Observation{
		Fub: tinycore.FubName, Valid: "out_valid", Data: "out_data", Halted: "halted_o",
	}, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	reg.SetManifest("golden_cycles", res.GoldenCycles)

	fmt.Printf("workload %s: golden run %d cycles\n", p.Name, res.GoldenCycles)
	fmt.Printf("%-16s %-6s %-8s %-8s %-8s %-8s %-8s\n",
		"node", "bits", "inject", "error", "unknown", "masked", "AVF")
	for _, n := range res.Nodes {
		fmt.Printf("%-16s %-6d %-8d %-8d %-8d %-8d %-8.3f\n",
			n.Fub+"/"+n.Node, n.Width, n.Injections, n.Errors, n.Unknown, n.Masked, n.AVF())
	}
	fmt.Printf("\ntotal: %d injections -> %d errors, %d unknown, %d masked; AVF (Eq. 2) = %.3f\n",
		res.Injections, res.Errors, res.Unknown, res.Masked, res.AVF())
	fmt.Printf("cost: %d simulated cycles in %v\n", res.SimulatedCycles, elapsed.Round(time.Millisecond))
	return nil
}
