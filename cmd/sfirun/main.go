// Command sfirun runs a statistical fault injection campaign against the
// tinycore netlist CPU executing a named workload — the brute-force
// baseline of §3.1.
//
// Usage:
//
//	sfirun -workload md5 -inject 6 -window 2000
//	sfirun -workload lattice -inject 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"seqavf/internal/isa"
	"seqavf/internal/sfi"
	"seqavf/internal/tinycore"
	"seqavf/internal/workload"
)

func main() {
	wl := flag.String("workload", "md5", "workload: md5, lattice, or synth")
	file := flag.String("file", "", "assemble and run a program file instead of a named workload")
	inject := flag.Int("inject", 4, "injections per sequential bit")
	window := flag.Int("window", 2000, "propagation window (cycles)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 1, "parallel workers")
	flag.Parse()

	if err := run(*wl, *file, *inject, *window, *seed, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "sfirun: %v\n", err)
		os.Exit(1)
	}
}

func run(wl, file string, inject, window int, seed uint64, workers int) error {
	var p *isa.Program
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		var perr error
		p, perr = isa.ParseAsm(file, f)
		f.Close()
		if perr != nil {
			return perr
		}
		wl = "(file)"
	}
	switch wl {
	case "(file)":
		// already assembled
	case "md5":
		p = workload.MD5Like(60)
	case "lattice":
		p = workload.Lattice(6)
	case "synth":
		p = workload.Synthetic(workload.DefaultSynth("synth", seed))
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}
	m, err := tinycore.New(p)
	if err != nil {
		return err
	}
	cfg := sfi.DefaultConfig()
	cfg.InjectionsPerBit = inject
	cfg.Window = window
	cfg.Seed = seed
	cfg.Workers = workers

	start := time.Now()
	res, err := sfi.Run(m.Sim, sfi.Observation{
		Fub: tinycore.FubName, Valid: "out_valid", Data: "out_data", Halted: "halted_o",
	}, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("workload %s: golden run %d cycles\n", p.Name, res.GoldenCycles)
	fmt.Printf("%-16s %-6s %-8s %-8s %-8s %-8s %-8s\n",
		"node", "bits", "inject", "error", "unknown", "masked", "AVF")
	for _, n := range res.Nodes {
		fmt.Printf("%-16s %-6d %-8d %-8d %-8d %-8d %-8.3f\n",
			n.Fub+"/"+n.Node, n.Width, n.Injections, n.Errors, n.Unknown, n.Masked, n.AVF())
	}
	fmt.Printf("\ntotal: %d injections -> %d errors, %d unknown, %d masked; AVF (Eq. 2) = %.3f\n",
		res.Injections, res.Errors, res.Unknown, res.Masked, res.AVF())
	fmt.Printf("cost: %d simulated cycles in %v\n", res.SimulatedCycles, elapsed.Round(time.Millisecond))
	return nil
}
