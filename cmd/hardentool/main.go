// Command hardentool runs the selective-hardening optimizer offline:
// solve a design once, evaluate it under one or more workload pAVF
// tables, and sweep a list of protection budgets into ranked protection
// plans — which sequential nodes to harden (ECC, DICE, duplication)
// for the largest chip-AVF reduction per protected bit.
//
// With several workloads the optimizer targets the mean AVF across
// them: node gains are linear in per-bit AVF, so the mean-AVF plan
// minimizes the mean residual chip AVF over the workload set. The
// -top-terms report ranks pAVF source terms by the analytical
// derivative ∂chipAVF/∂term — which measured inputs the chip's
// vulnerability actually rides on.
//
// Usage:
//
//	hardentool -netlist design.nl -pavf run.pavf -budgets 64,128,256
//	hardentool -netlist design.nl -pavfdir runs/ -budgets 1024 -solver greedy -top-terms 20
//	hardentool -netlist design.nl -pavf run.pavf -budgets 32,64 -costs costs.json -csv curve.csv
//
// -costs points at a JSON object mapping "FUB/node" keys to positive
// protection costs; unlisted nodes default to their bit width. With
// -artifacts DIR the solve warm-starts from the content-addressed store
// and the term-sensitivity vector is cached as a .sens artifact.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/harden"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/sweep"
)

func main() {
	nl := flag.String("netlist", "", "netlist file (required)")
	pavfFile := flag.String("pavf", "", "single workload pAVF table")
	dir := flag.String("pavfdir", "", "directory of per-workload pAVF tables (alternative to -pavf)")
	glob := flag.String("glob", "*.pavf", "file pattern selecting workload tables in -pavfdir")
	budgetsFlag := flag.String("budgets", "", "comma-separated protection budgets to sweep (required)")
	costsFile := flag.String("costs", "", "JSON file mapping FUB/node keys to protection costs (default: bit width)")
	solver := flag.String("solver", "", "protection solver: auto (default), greedy, dp, exhaustive")
	topTerms := flag.Int("top-terms", 0, "report the N most sensitive pAVF source terms")
	workers := flag.Int("workers", 0, "evaluation workers (0 = all cores)")
	loop := flag.Float64("loop", 0.3, "loop-boundary pAVF")
	pseudo := flag.Float64("pseudo", 0.2, "boundary pseudo-structure pAVF")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	csvOut := flag.String("csv", "", "also write the budget/residual curve as CSV here")
	arts := cliutil.ArtifactFlags()
	ob := cliutil.ObsFlags()
	flag.Parse()

	if *nl == "" || *budgetsFlag == "" || (*pavfFile == "" && *dir == "") {
		flag.Usage()
		os.Exit(2)
	}
	reg := ob.Start("hardentool")
	err := run(reg, arts, *nl, *pavfFile, *dir, *glob, *budgetsFlag, *costsFile,
		*solver, *topTerms, *workers, *loop, *pseudo, *out, *csvOut)
	if ob.Trace {
		reg.WritePhaseSummary(os.Stderr)
	}
	if err == nil {
		err = ob.Finish()
	}
	cliutil.Exit("hardentool", err)
}

// report is the JSON document hardentool emits.
type report struct {
	Design      string                   `json:"design"`
	Workloads   []string                 `json:"workloads"`
	SeqBits     int                      `json:"seq_bits"`
	Candidates  int                      `json:"candidates"`
	BaseChipAVF float64                  `json:"base_chip_avf"`
	SensCache   string                   `json:"sens_cache,omitempty"`
	Plans       []*harden.Protection     `json:"plans"`
	TopTerms    []harden.TermSensitivity `json:"top_terms,omitempty"`
	ElapsedMS   float64                  `json:"elapsed_ms"`
}

func parseBudgets(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	budgets := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		b, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("budget %q: %v", p, err)
		}
		if !(b > 0) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("budget %q must be a positive finite number", p)
		}
		budgets = append(budgets, b)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("-budgets %q names no budgets", s)
	}
	return budgets, nil
}

func readCosts(path string) (map[string]float64, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var costs map[string]float64
	if err := json.Unmarshal(data, &costs); err != nil {
		return nil, fmt.Errorf("costs file %s: %v", path, err)
	}
	return costs, nil
}

func run(reg *obs.Registry, arts *cliutil.Artifacts, nlPath, pavfFile, dir, glob, budgetsFlag, costsFile, solver string,
	topTerms, workers int, loop, pseudo float64, out, csvOut string) error {
	start := time.Now()
	budgets, err := parseBudgets(budgetsFlag)
	if err != nil {
		return err
	}
	if !harden.ValidSolver(solver) {
		return fmt.Errorf("unknown solver %q (want auto, greedy, dp, or exhaustive)", solver)
	}
	costs, err := readCosts(costsFile)
	if err != nil {
		return err
	}
	reg.SetManifest("netlist", nlPath)
	reg.SetManifest("budgets", budgetsFlag)
	reg.SetManifest("solver", string(solver))

	root := reg.StartSpan("hardentool")
	defer root.End()
	ctx := obs.ContextWithSpan(context.Background(), root)

	lsp := root.Child("load")
	f, err := os.Open(nlPath)
	if err != nil {
		return err
	}
	d, err := netlist.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return err
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		return err
	}
	g, err := graph.Build(fd)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.LoopPAVF = loop
	opts.PseudoPAVF = pseudo
	opts.Obs = reg
	a, err := core.NewAnalyzer(g, opts)
	if err != nil {
		return err
	}
	var named []cliutil.NamedInputs
	if pavfFile != "" {
		in, err := cliutil.ReadPAVF(pavfFile)
		if err != nil {
			return err
		}
		named = append(named, cliutil.NamedInputs{Name: pavfFile, Inputs: in})
	}
	if dir != "" {
		more, err := cliutil.ReadPAVFDir(dir, glob)
		if err != nil {
			return err
		}
		named = append(named, more...)
	}
	lsp.SetAttr("workloads", len(named))
	lsp.End()

	st, err := arts.Open(reg)
	if err != nil {
		return err
	}
	res, disp, err := cliutil.SolveWithStore(ctx, "hardentool", st, a, named[0].Inputs, reg)
	if err != nil {
		return err
	}
	if disp.Warm() {
		fmt.Fprintf(os.Stderr, "hardentool: warm start from artifact store (fingerprint %016x)\n", a.Fingerprint())
	}

	engOpts := sweep.Options{Workers: workers, Obs: reg}
	if st != nil {
		engOpts.Store = st
	}
	eng := sweep.New(engOpts)

	// The optimization substrate: the solved result when one workload is
	// given, else a shallow copy carrying the mean AVF (and mean env)
	// across all of them — the same aggregation POST /v1/harden applies.
	agg := res
	env, err := a.CheckedEnv(res.Inputs)
	if err != nil {
		return err
	}
	names := make([]string, len(named))
	for i, ni := range named {
		names[i] = ni.Name
	}
	if len(named) > 1 {
		ws := make([]sweep.Workload, len(named))
		for i, ni := range named {
			ws[i] = sweep.Workload{Name: ni.Name, Inputs: ni.Inputs}
		}
		batch, err := eng.SweepContext(ctx, res, ws)
		if err != nil {
			return err
		}
		mean := make([]float64, len(res.AVF))
		for _, r := range batch.Results {
			for v, x := range r.AVF {
				mean[v] += x
			}
		}
		envSum := make([]float64, len(env))
		for _, ni := range named {
			wenv, err := a.CheckedEnv(ni.Inputs)
			if err != nil {
				return err
			}
			for t, x := range wenv {
				envSum[t] += x
			}
		}
		n := float64(len(named))
		for v := range mean {
			mean[v] /= n
		}
		for t := range envSum {
			env[t] = envSum[t] / n
		}
		cp := *res
		cp.AVF = mean
		agg = &cp
	}

	model, err := harden.NewModel(agg, costs)
	if err != nil {
		return err
	}
	osp := root.Child("harden.optimize")
	plans, err := model.Sweep(budgets, solver)
	osp.SetAttr("budgets", len(budgets))
	osp.End()
	if err != nil {
		return err
	}

	rep := report{
		Design:      d.Name,
		Workloads:   names,
		SeqBits:     model.SeqBits(),
		Candidates:  len(model.Candidates()),
		BaseChipAVF: model.Base().WeightedSeqAVF,
		Plans:       plans,
	}
	if topTerms > 0 {
		plan, err := eng.PlanContext(ctx, res)
		if err != nil {
			return err
		}
		var sens harden.SensStore
		if st != nil {
			sens = st
		}
		vec, hit, err := harden.CachedTermDerivs(plan, env, sens)
		if err != nil {
			return err
		}
		if st != nil {
			if hit {
				rep.SensCache = "hit"
			} else {
				rep.SensCache = "miss"
			}
		}
		ranked := harden.RankDerivs(a.Universe(), vec.Deriv)
		if len(ranked) > topTerms {
			ranked = ranked[:topTerms]
		}
		rep.TopTerms = ranked
	}
	rep.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3

	w := os.Stdout
	if out != "" {
		g, err := os.Create(out)
		if err != nil {
			return err
		}
		defer g.Close()
		w = g
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if csvOut != "" {
		if err := writeCSV(csvOut, plans); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "hardentool: %d candidates over %d seq bits, %d budgets, base chip AVF %.6f\n",
		rep.Candidates, rep.SeqBits, len(plans), rep.BaseChipAVF)
	return nil
}

// writeCSV emits the budget/residual curve: one row per plan, ready for
// plotting AVF-vs-budget trade-off frontiers.
func writeCSV(path string, plans []*harden.Protection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	fmt.Fprintln(bw, "budget,solver,chosen,total_cost,base_chip_avf,residual_chip_avf,reduction_frac")
	for _, p := range plans {
		fmt.Fprintf(bw, "%g,%s,%d,%g,%.9g,%.9g,%.9g\n",
			p.Budget, p.Solver, len(p.Chosen), p.TotalCost,
			p.BaseChipAVF, p.ResidualChipAVF, p.ReductionFrac)
	}
	return bw.Flush()
}
