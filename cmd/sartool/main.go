// Command sartool runs the Sequential AVF Resolution Tool on a textual
// netlist plus a pAVF table, printing per-node AVFs, per-FUB summaries,
// or closed-form equations.
//
// The pAVF table is line oriented:
//
//	R <Struct>.<port> <pAVF_R>
//	W <Struct>.<port> <pAVF_W>
//	S <Struct> <structure AVF>
//
// Observability: -metrics FILE writes a JSON snapshot with solver
// counters, phase timings (graph/env/fwd/bwd, per-iteration relaxation
// spans under -partitioned), and a self-describing run manifest; -trace
// prints phase spans live and a phase-timing summary at exit; -pprof ADDR
// serves net/http/pprof.
//
// Usage:
//
//	sartool -netlist design.nl -pavf pavf.txt -summary
//	sartool -netlist design.nl -pavf pavf.txt -nodes -equations
//	sartool -netlist design.nl -pavf pavf.txt -partitioned -loop 0.3
//	sartool -netlist design.nl -pavf pavf.txt -metrics out.json -trace
//	sartool -netlist design.nl -pavf pavf.txt -artifacts ~/.cache/seqavf
//
// With -artifacts DIR, the solved closed forms are persisted to a
// content-addressed store keyed by the design fingerprint: a rerun on
// the same design (same graph and role-affecting options) skips the
// solve entirely and re-evaluates the stored equations against the new
// pAVF table, bit-identically to a fresh solve.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
)

func main() {
	nl := flag.String("netlist", "", "netlist file (required)")
	pavfPath := flag.String("pavf", "", "pAVF table file (required)")
	loop := flag.Float64("loop", 0.3, "loop-boundary pAVF")
	pseudo := flag.Float64("pseudo", 0.2, "boundary pseudo-structure pAVF")
	partitioned := flag.Bool("partitioned", false, "use the FUB-partitioned relaxation")
	iterations := flag.Int("iterations", 20, "relaxation iteration bound")
	summary := flag.Bool("summary", true, "print the design summary")
	nodes := flag.Bool("nodes", false, "print per-sequential-node AVFs")
	equations := flag.Bool("equations", false, "print closed-form equations with -nodes")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON instead of text")
	top := flag.Int("top", 0, "print the N most vulnerable sequential nodes with their pAVF contributors")
	arts := cliutil.ArtifactFlags()
	ob := cliutil.ObsFlags()
	flag.Parse()

	if *nl == "" || *pavfPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	reg := ob.Start("sartool")
	err := run(reg, arts, *nl, *pavfPath, *loop, *pseudo, *partitioned, *iterations, *summary, *nodes, *equations, *jsonOut, *top)
	if ob.Trace {
		reg.WritePhaseSummary(os.Stderr)
	}
	if err == nil {
		err = ob.Finish()
	}
	cliutil.Exit("sartool", err)
}

func run(reg *obs.Registry, arts *cliutil.Artifacts, nlPath, pavfPath string, loop, pseudo float64, partitioned bool, iterations int, summary, nodes, equations, jsonOut bool, top int) error {
	reg.SetManifest("netlist", nlPath)
	reg.SetManifest("pavf", pavfPath)
	reg.SetManifest("loop_pavf", loop)
	reg.SetManifest("pseudo_pavf", pseudo)
	reg.SetManifest("partitioned", partitioned)
	reg.SetManifest("iteration_bound", iterations)

	lsp := reg.StartSpan("load")
	psp := lsp.Child("parse")
	f, err := os.Open(nlPath)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := netlist.Parse(f)
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return err
	}
	psp.End()
	fsp := lsp.Child("flatten")
	fd, err := netlist.Flatten(d)
	if err != nil {
		return err
	}
	fsp.End()
	gsp := lsp.Child("graph")
	g, err := graph.Build(fd)
	if err != nil {
		return err
	}
	gsp.SetAttr("vertices", g.NumVerts())
	gsp.End()
	asp := lsp.Child("analyzer")
	opts := core.DefaultOptions()
	opts.LoopPAVF = loop
	opts.PseudoPAVF = pseudo
	opts.Iterations = iterations
	opts.Obs = reg
	a, err := core.NewAnalyzer(g, opts)
	if err != nil {
		return err
	}
	asp.End()
	in, err := cliutil.ReadPAVF(pavfPath)
	if err != nil {
		return err
	}
	lsp.End()
	var res *core.Result
	if partitioned {
		// The partitioned relaxation's numerics differ from the
		// monolithic fixpoint in the last bits; artifacts persist the
		// monolithic solve, so the store is bypassed here.
		if arts.Dir != "" {
			fmt.Fprintln(os.Stderr, "sartool: -artifacts is ignored with -partitioned (artifacts persist the monolithic solve)")
		}
		res, err = a.SolvePartitioned(in)
	} else {
		st, serr := arts.Open(reg)
		if serr != nil {
			return serr
		}
		var disp cliutil.Disposition
		res, disp, err = cliutil.SolveWithStore(context.Background(), "sartool", st, a, in, reg)
		switch {
		case disp.Warm():
			fmt.Fprintf(os.Stderr, "sartool: warm start from artifact store (fingerprint %016x)\n", a.Fingerprint())
		case disp.Kind == "incremental":
			fmt.Fprintf(os.Stderr, "sartool: incremental re-solve from prior artifact (%d of %d FUBs reused, %d iterations)\n",
				disp.Incremental.FubsReused, disp.Incremental.FubsTotal, disp.Incremental.Iterations)
		}
	}
	if err != nil {
		return err
	}
	reg.SetManifest("iterations", res.Iterations)
	reg.SetManifest("converged", res.Converged)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if jsonOut {
		return res.WriteJSON(w, equations)
	}
	if summary {
		s := res.Summarize()
		fmt.Fprintf(w, "design %s: %d FUBs, %d graph bits\n", d.Name, len(fd.Fubs), g.NumVerts())
		fmt.Fprintf(w, "sequential bits        : %d (loops %d, control regs %d)\n", s.SeqBits, s.LoopSeqBits, s.CtrlBits)
		fmt.Fprintf(w, "weighted avg seq AVF   : %.4f\n", s.WeightedSeqAVF)
		fmt.Fprintf(w, "weighted avg node AVF  : %.4f\n", s.WeightedNodeAVF)
		fmt.Fprintf(w, "visited by walks       : %.2f%%\n", 100*s.VisitedFraction)
		fmt.Fprintf(w, "iterations             : %d (converged=%v)\n", s.Iterations, s.Converged)
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s %-10s %-12s %-12s\n", "FUB", "seq bits", "avg seqAVF", "avg nodeAVF")
		for _, fs := range res.FubStats() {
			fmt.Fprintf(w, "%-10s %-10d %-12.4f %-12.4f\n", fs.Fub, fs.SeqBits, fs.AvgSeqAVF, fs.AvgNodeAVF)
		}
	}
	if top > 0 {
		writeTop(w, g, res, top)
	}
	if nodes {
		byNode := res.SeqAVFByNode()
		keys := make([]string, 0, len(byNode))
		for k := range byNode {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w)
		for _, k := range keys {
			fmt.Fprintf(w, "%-40s %.4f", k, byNode[k])
			if equations {
				fub, node, _ := strings.Cut(k, "/")
				if v, _, ok := g.VertexBase(fub, node); ok {
					fmt.Fprintf(w, "  %s", res.Equation(v))
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// writeTop prints the most vulnerable sequential nodes with their
// SDC/DUE/DCE decomposition and the measured ports driving them — the
// mitigation-planning view of §1.
func writeTop(w io.Writer, g *graph.Graph, res *core.Result, top int) {
	type entry struct {
		name string
		base graph.VertexID
		avf  float64
	}
	byNode := res.SeqAVFByNode()
	entries := make([]entry, 0, len(byNode))
	for name, avf := range byNode {
		fub, node, _ := strings.Cut(name, "/")
		v, _, ok := g.VertexBase(fub, node)
		if !ok {
			continue
		}
		entries = append(entries, entry{name: name, base: v, avf: avf})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].avf != entries[j].avf {
			return entries[i].avf > entries[j].avf
		}
		return entries[i].name < entries[j].name
	})
	if len(entries) > top {
		entries = entries[:top]
	}
	fmt.Fprintf(w, "\ntop %d vulnerable sequential nodes:\n", len(entries))
	for _, e := range entries {
		d := res.Decompose(e.base)
		fmt.Fprintf(w, "%-36s AVF %.4f (SDC %.4f, DUE %.4f, DCE %.4f)\n",
			e.name, e.avf, d.SDC, d.DUE, d.DCE)
		fwd, bwd := res.Contributors(e.base)
		if len(fwd) > 0 {
			fmt.Fprintf(w, "    sources:")
			for i, c := range fwd {
				if i == 3 {
					fmt.Fprintf(w, " ...")
					break
				}
				fmt.Fprintf(w, " %s=%.3f", c.Term, c.Value)
			}
			fmt.Fprintln(w)
		}
		if len(bwd) > 0 {
			fmt.Fprintf(w, "    sinks:  ")
			for i, c := range bwd {
				if i == 3 {
					fmt.Fprintf(w, " ...")
					break
				}
				fmt.Fprintf(w, " %s=%.3f", c.Term, c.Value)
			}
			fmt.Fprintln(w)
		}
	}
}
