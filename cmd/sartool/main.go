// Command sartool runs the Sequential AVF Resolution Tool on a textual
// netlist plus a pAVF table, printing per-node AVFs, per-FUB summaries,
// or closed-form equations.
//
// The pAVF table is line oriented:
//
//	R <Struct>.<port> <pAVF_R>
//	W <Struct>.<port> <pAVF_W>
//	S <Struct> <structure AVF>
//
// Usage:
//
//	sartool -netlist design.nl -pavf pavf.txt -summary
//	sartool -netlist design.nl -pavf pavf.txt -nodes -equations
//	sartool -netlist design.nl -pavf pavf.txt -partitioned -loop 0.3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
)

func main() {
	nl := flag.String("netlist", "", "netlist file (required)")
	pavfPath := flag.String("pavf", "", "pAVF table file (required)")
	loop := flag.Float64("loop", 0.3, "loop-boundary pAVF")
	pseudo := flag.Float64("pseudo", 0.2, "boundary pseudo-structure pAVF")
	partitioned := flag.Bool("partitioned", false, "use the FUB-partitioned relaxation")
	iterations := flag.Int("iterations", 20, "relaxation iteration bound")
	summary := flag.Bool("summary", true, "print the design summary")
	nodes := flag.Bool("nodes", false, "print per-sequential-node AVFs")
	equations := flag.Bool("equations", false, "print closed-form equations with -nodes")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON instead of text")
	top := flag.Int("top", 0, "print the N most vulnerable sequential nodes with their pAVF contributors")
	flag.Parse()

	if *nl == "" || *pavfPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*nl, *pavfPath, *loop, *pseudo, *partitioned, *iterations, *summary, *nodes, *equations, *jsonOut, *top); err != nil {
		fmt.Fprintf(os.Stderr, "sartool: %v\n", err)
		os.Exit(1)
	}
}

func run(nlPath, pavfPath string, loop, pseudo float64, partitioned bool, iterations int, summary, nodes, equations, jsonOut bool, top int) error {
	f, err := os.Open(nlPath)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := netlist.Parse(f)
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return err
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		return err
	}
	g, err := graph.Build(fd)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.LoopPAVF = loop
	opts.PseudoPAVF = pseudo
	opts.Iterations = iterations
	a, err := core.NewAnalyzer(g, opts)
	if err != nil {
		return err
	}
	in, err := readPAVF(pavfPath)
	if err != nil {
		return err
	}
	var res *core.Result
	if partitioned {
		res, err = a.SolvePartitioned(in)
	} else {
		res, err = a.Solve(in)
	}
	if err != nil {
		return err
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if jsonOut {
		return res.WriteJSON(w, equations)
	}
	if summary {
		s := res.Summarize()
		fmt.Fprintf(w, "design %s: %d FUBs, %d graph bits\n", d.Name, len(fd.Fubs), g.NumVerts())
		fmt.Fprintf(w, "sequential bits        : %d (loops %d, control regs %d)\n", s.SeqBits, s.LoopSeqBits, s.CtrlBits)
		fmt.Fprintf(w, "weighted avg seq AVF   : %.4f\n", s.WeightedSeqAVF)
		fmt.Fprintf(w, "weighted avg node AVF  : %.4f\n", s.WeightedNodeAVF)
		fmt.Fprintf(w, "visited by walks       : %.2f%%\n", 100*s.VisitedFraction)
		fmt.Fprintf(w, "iterations             : %d (converged=%v)\n", s.Iterations, s.Converged)
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s %-10s %-12s %-12s\n", "FUB", "seq bits", "avg seqAVF", "avg nodeAVF")
		for _, fs := range res.FubStats() {
			fmt.Fprintf(w, "%-10s %-10d %-12.4f %-12.4f\n", fs.Fub, fs.SeqBits, fs.AvgSeqAVF, fs.AvgNodeAVF)
		}
	}
	if top > 0 {
		writeTop(w, g, res, top)
	}
	if nodes {
		byNode := res.SeqAVFByNode()
		keys := make([]string, 0, len(byNode))
		for k := range byNode {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w)
		for _, k := range keys {
			fmt.Fprintf(w, "%-40s %.4f", k, byNode[k])
			if equations {
				fub, node, _ := strings.Cut(k, "/")
				if v, _, ok := g.VertexBase(fub, node); ok {
					fmt.Fprintf(w, "  %s", res.Equation(v))
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// writeTop prints the most vulnerable sequential nodes with their
// SDC/DUE/DCE decomposition and the measured ports driving them — the
// mitigation-planning view of §1.
func writeTop(w io.Writer, g *graph.Graph, res *core.Result, top int) {
	type entry struct {
		name string
		base graph.VertexID
		avf  float64
	}
	byNode := res.SeqAVFByNode()
	entries := make([]entry, 0, len(byNode))
	for name, avf := range byNode {
		fub, node, _ := strings.Cut(name, "/")
		v, _, ok := g.VertexBase(fub, node)
		if !ok {
			continue
		}
		entries = append(entries, entry{name: name, base: v, avf: avf})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].avf != entries[j].avf {
			return entries[i].avf > entries[j].avf
		}
		return entries[i].name < entries[j].name
	})
	if len(entries) > top {
		entries = entries[:top]
	}
	fmt.Fprintf(w, "\ntop %d vulnerable sequential nodes:\n", len(entries))
	for _, e := range entries {
		d := res.Decompose(e.base)
		fmt.Fprintf(w, "%-36s AVF %.4f (SDC %.4f, DUE %.4f, DCE %.4f)\n",
			e.name, e.avf, d.SDC, d.DUE, d.DCE)
		fwd, bwd := res.Contributors(e.base)
		if len(fwd) > 0 {
			fmt.Fprintf(w, "    sources:")
			for i, c := range fwd {
				if i == 3 {
					fmt.Fprintf(w, " ...")
					break
				}
				fmt.Fprintf(w, " %s=%.3f", c.Term, c.Value)
			}
			fmt.Fprintln(w)
		}
		if len(bwd) > 0 {
			fmt.Fprintf(w, "    sinks:  ")
			for i, c := range bwd {
				if i == 3 {
					fmt.Fprintf(w, " ...")
					break
				}
				fmt.Fprintf(w, " %s=%.3f", c.Term, c.Value)
			}
			fmt.Fprintln(w)
		}
	}
}

func readPAVF(path string) (*core.Inputs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	in := core.NewInputs()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want '<R|W|S> <name> <value>'", path, lineNo)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad value %q", path, lineNo, fields[2])
		}
		switch fields[0] {
		case "R", "W":
			st, port, ok := strings.Cut(fields[1], ".")
			if !ok {
				return nil, fmt.Errorf("%s:%d: port %q not Struct.port", path, lineNo, fields[1])
			}
			sp := core.StructPort{Struct: st, Port: port}
			if fields[0] == "R" {
				in.ReadPorts[sp] = v
			} else {
				in.WritePorts[sp] = v
			}
		case "S":
			in.StructAVF[fields[1]] = v
		default:
			return nil, fmt.Errorf("%s:%d: unknown record %q", path, lineNo, fields[0])
		}
	}
	return in, sc.Err()
}
