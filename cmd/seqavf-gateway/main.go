// Command seqavf-gateway fronts a fleet of seqavfd replicas: one stable
// address that consistent-hash routes every design's traffic to its
// owning replica, so each replica solves and caches only its share of
// the design set while clients see one service.
//
// Routing uses rendezvous (highest-random-weight) hashing over the
// -replicas list keyed by design name: every gateway instance computes
// the same owner from the same list, no coordination or shared state,
// and adding or removing a replica only remaps the designs that replica
// owned. A dead replica is failed over — the gateway quarantines it for
// -cooldown and retries the next hash choice after -backoff — and
// replica 5xx unavailability (502/503/504) fails over the same way;
// 429 backpressure and client errors pass through untouched.
//
// Endpoints:
//
//	GET  /healthz        fleet health: per-replica liveness fan-out
//	GET  /metrics        fleet-wide Prometheus exposition (all replicas merged)
//	GET  /metrics.json   the gateway's own obs registry snapshot
//	GET  /v1/designs     union of every replica's registered designs
//	POST /v1/designs     routed to the owner, replicated to the runner-up
//	POST /v1/designs/{name}/edit  routed to the owner, replicated likewise
//	POST /v1/sweep       routed to the design's owner
//	POST /v1/harden      routed to the owner; multi-budget sweeps split
//	                     across the top-2 candidates and merge
//	GET  /v1/artifacts/{fingerprint}  routed by artifact fingerprint
//
// Every proxied request carries a W3C traceparent header, so a client's
// trace continues through the gateway into the replica's span tree.
//
// Usage:
//
//	seqavf-gateway -listen :8090 -replicas host1:8091,host2:8091,host3:8091
//	seqavf-gateway -listen :8090 -replicas host1:8091 -replicas host2:8091
//
// Run the replicas with -artifacts and -peers pointing at each other so
// a replica restarted with an empty cache warm-starts from the fleet
// (see seqavfd).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/fleet"
)

func main() {
	listen := flag.String("listen", ":8090", "HTTP listen address")
	replicas := cliutil.ReplicasFlag("replicas", "seqavfd replica base URLs (repeatable, comma-separated); required")
	timeout := flag.Duration("timeout", 60*time.Second, "per-attempt upstream request timeout")
	maxBody := flag.Int64("max-body", 8<<20, "request body size cap in bytes")
	retries := flag.Int("retries", 0, "replicas tried after the owner fails (0 = every remaining replica)")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "pause between fail-over attempts")
	cooldown := flag.Duration("cooldown", 5*time.Second, "quarantine window for a replica after a transport failure")
	drain := flag.Duration("drain", 15*time.Second, "graceful shutdown drain deadline")
	ob := cliutil.ObsFlags()
	flag.Parse()

	if len(replicas.URLs) == 0 {
		cliutil.Exit("seqavf-gateway", errors.New("at least one -replicas entry is required"))
	}
	reg := ob.Start("seqavf-gateway")
	gw, err := fleet.New(fleet.Config{
		Replicas:     replicas.URLs,
		Obs:          reg,
		Client:       &http.Client{Timeout: *timeout},
		MaxBodyBytes: *maxBody,
		Retries:      *retries,
		Backoff:      *backoff,
		Cooldown:     *cooldown,
	})
	if err != nil {
		cliutil.Exit("seqavf-gateway", err)
	}

	hs := &http.Server{
		Addr:              *listen,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "seqavf-gateway: routing %d replica(s) on %s\n", len(replicas.URLs), *listen)
		errc <- hs.ListenAndServe()
	}()

	err = nil
	select {
	case err = <-errc:
		// Listener failed outright (bad address, port in use).
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "seqavf-gateway: draining in-flight requests...")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		err = hs.Shutdown(dctx)
		cancel()
		if err != nil {
			err = errors.Join(fmt.Errorf("drain exceeded %v", *drain), hs.Close())
		}
		if ferr := ob.Finish(); err == nil {
			err = ferr
		}
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	cliutil.Exit("seqavf-gateway", err)
}
