// Command experiments regenerates the paper's tables and figures
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the results).
//
// Observability: -metrics FILE writes a JSON snapshot with a root span per
// experiment (wall-clock per figure/table), the aggregated solver and
// model counters, and a run manifest; -trace prints spans to stderr;
// -pprof ADDR serves net/http/pprof — handy because -exp all runs for a
// while.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig8|fig9|fig10|convergence|table1|validate|symbolic
//	experiments -exp fig9 -seed 7 -suite 20
//	experiments -exp all -metrics exp.json -pprof localhost:6060
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/experiments"
	"seqavf/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig8, fig9, fig10, convergence, validate, symbolic, protection, loopchar, scaling, hardening, variation, exhaustive, all")
	seed := flag.Uint64("seed", 2027, "design/workload seed")
	suite := flag.Int("suite", 12, "synthetic workloads beyond the named kernels")
	inject := flag.Int("inject", 4, "SFI injections per bit (validate)")
	valprog := flag.String("workload", "md5", "validation workload: md5 or lattice")
	ob := cliutil.ObsFlags()
	flag.Parse()

	reg := ob.Start("experiments")
	err := run(reg, *exp, *seed, *suite, *inject, *valprog)
	if ob.Trace {
		reg.WritePhaseSummary(os.Stderr)
	}
	if err == nil {
		err = ob.Finish()
	}
	cliutil.Exit("experiments", err)
}

// textReport is the shape every experiment result shares.
type textReport interface {
	WriteText(w io.Writer)
}

func run(reg *obs.Registry, exp string, seed uint64, suite, inject int, valprog string) error {
	reg.SetManifest("exp", exp)
	reg.SetManifest("seed", seed)
	reg.SetManifest("suite", suite)
	reg.SetManifest("injections_per_bit", inject)
	reg.SetManifest("workload", valprog)

	w := os.Stdout
	needEnv := map[string]bool{
		"fig8": true, "fig9": true, "fig10": true,
		"convergence": true, "symbolic": true, "hardening": true, "variation": true, "all": true,
	}
	var env *experiments.Env
	if needEnv[exp] {
		fmt.Fprintf(w, "setting up: XeonLike design (seed %d), %d+2 workloads on the ACE model...\n", seed, suite)
		ssp := reg.StartSpan("setup")
		cfg := experiments.SetupConfig{Seed: seed, SuiteSize: suite}
		var err error
		env, err = experiments.Setup(cfg)
		if err != nil {
			return err
		}
		ssp.End()
		fmt.Fprintf(w, "ready: %d FUBs, %d structures, %d graph bits\n\n",
			len(env.Gen.Design.Fubs), len(env.Gen.Design.Structures), env.Analyzer.G.NumVerts())
	}

	table := []struct {
		name string
		run  func() (textReport, error)
	}{
		{"table1", func() (textReport, error) { return experiments.Table1() }},
		{"fig8", func() (textReport, error) { return experiments.Figure8(env, nil) }},
		{"fig9", func() (textReport, error) { return experiments.Figure9(env) }},
		{"convergence", func() (textReport, error) { return experiments.Convergence(env) }},
		{"fig10", func() (textReport, error) { return experiments.Figure10(env) }},
		{"validate", func() (textReport, error) { return experiments.Validate(valprog, inject) }},
		{"scaling", func() (textReport, error) { return experiments.ConvergenceScaling(nil) }},
		{"loopchar", func() (textReport, error) { return experiments.LoopChar(valprog, 2, inject) }},
		{"protection", func() (textReport, error) { return experiments.Protection(seed, nil) }},
		{"hardening", func() (textReport, error) { return experiments.Hardening(env, nil) }},
		{"exhaustive", func() (textReport, error) { return experiments.Exhaustive(nil) }},
		{"variation", func() (textReport, error) { return experiments.Variation(env, 10) }},
		{"symbolic", func() (textReport, error) { return experiments.Symbolic(env) }},
	}
	known := exp == "all"
	for _, e := range table {
		if exp != e.name && exp != "all" {
			continue
		}
		known = true
		sp := reg.StartSpan(e.name)
		r, err := e.run()
		sp.End()
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if !known {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
