// Command experiments regenerates the paper's tables and figures
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the results).
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig8|fig9|fig10|convergence|table1|validate|symbolic
//	experiments -exp fig9 -seed 7 -suite 20
package main

import (
	"flag"
	"fmt"
	"os"

	"seqavf/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig8, fig9, fig10, convergence, validate, symbolic, protection, loopchar, scaling, hardening, variation, exhaustive, all")
	seed := flag.Uint64("seed", 2027, "design/workload seed")
	suite := flag.Int("suite", 12, "synthetic workloads beyond the named kernels")
	inject := flag.Int("inject", 4, "SFI injections per bit (validate)")
	valprog := flag.String("workload", "md5", "validation workload: md5 or lattice")
	flag.Parse()

	if err := run(*exp, *seed, *suite, *inject, *valprog); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, seed uint64, suite, inject int, valprog string) error {
	w := os.Stdout
	needEnv := map[string]bool{
		"fig8": true, "fig9": true, "fig10": true,
		"convergence": true, "symbolic": true, "hardening": true, "variation": true, "all": true,
	}
	var env *experiments.Env
	if needEnv[exp] {
		fmt.Fprintf(w, "setting up: XeonLike design (seed %d), %d+2 workloads on the ACE model...\n", seed, suite)
		cfg := experiments.SetupConfig{Seed: seed, SuiteSize: suite}
		var err error
		env, err = experiments.Setup(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ready: %d FUBs, %d structures, %d graph bits\n\n",
			len(env.Gen.Design.Fubs), len(env.Gen.Design.Structures), env.Analyzer.G.NumVerts())
	}

	do := func(name string) bool { return exp == name || exp == "all" }

	if do("table1") {
		r, err := experiments.Table1()
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("fig8") {
		r, err := experiments.Figure8(env, nil)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("fig9") {
		r, err := experiments.Figure9(env)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("convergence") {
		r, err := experiments.Convergence(env)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("fig10") {
		r, err := experiments.Figure10(env)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("validate") {
		r, err := experiments.Validate(valprog, inject)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("scaling") {
		r, err := experiments.ConvergenceScaling(nil)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("loopchar") {
		r, err := experiments.LoopChar(valprog, 2, inject)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("protection") {
		r, err := experiments.Protection(seed, nil)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("hardening") {
		r, err := experiments.Hardening(env, nil)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("exhaustive") {
		r, err := experiments.Exhaustive(nil)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("variation") {
		r, err := experiments.Variation(env, 10)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	if do("symbolic") {
		r, err := experiments.Symbolic(env)
		if err != nil {
			return err
		}
		r.WriteText(w)
		fmt.Fprintln(w)
	}
	return nil
}
