// Command sweeprun evaluates a directory of per-workload pAVF tables
// against one design in a single batch: the design is solved symbolically
// once, compiled into a deduplicated evaluation plan, and every workload
// is re-evaluated through the plan on a bounded worker pool — the
// compile-once / serve-many workflow of the paper's §5.1.
//
// Output is one JSON document: plan statistics plus, per workload, the
// design summary and (with -nodes) per-sequential-node seqAVFs.
//
// With -windows the matched files are parsed as multi-window interval
// tables instead (see internal/pavfio: "# window <idx> <start> <end>"
// sections), every window of every workload is evaluated as one lane of
// a single blocked batch, and the report carries each workload's
// per-window chip-AVF time series with its summary statistics (peak
// window, peak/mean ratio) — and, with -nodes, the per-sequential-node
// series.
//
// Usage:
//
//	sweeprun -netlist design.nl -pavfdir runs/ -out sweep.json
//	sweeprun -netlist design.nl -pavfdir runs/ -glob 'spec*.pavf' -workers 8 -nodes
//	sweeprun -netlist design.nl -pavfdir runs/ -artifacts ~/.cache/seqavf
//	sweeprun -netlist design.nl -pavfdir runs/ -glob '*.ipavf' -windows -nodes
//
// With -artifacts DIR, the solved equations and compiled plan are
// persisted to a content-addressed store keyed by the design
// fingerprint; reruns on the same design warm-start from disk instead
// of solving and compiling again.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"seqavf/cmd/internal/cliutil"
	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/sweep"
)

func main() {
	nl := flag.String("netlist", "", "netlist file (required)")
	dir := flag.String("pavfdir", "", "directory of per-workload pAVF tables (required)")
	glob := flag.String("glob", "*.pavf", "file pattern selecting workload tables in -pavfdir")
	workers := flag.Int("workers", 0, "evaluation workers (0 = all cores)")
	chunk := flag.Int("chunk", 0, "workloads per worker claim (0 = auto)")
	blockW := cliutil.BlockFlag()
	loop := flag.Float64("loop", 0.3, "loop-boundary pAVF")
	pseudo := flag.Float64("pseudo", 0.2, "boundary pseudo-structure pAVF")
	nodes := flag.Bool("nodes", false, "include per-sequential-node seqAVFs for each workload")
	windows := flag.Bool("windows", false, "parse matched tables as multi-window interval tables and report per-window AVF time series")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	arts := cliutil.ArtifactFlags()
	ob := cliutil.ObsFlags()
	flag.Parse()

	if *nl == "" || *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	reg := ob.Start("sweeprun")
	err := run(reg, arts, *nl, *dir, *glob, *workers, *chunk, *blockW, *loop, *pseudo, *nodes, *windows, *out)
	if ob.Trace {
		reg.WritePhaseSummary(os.Stderr)
	}
	if err == nil {
		err = ob.Finish()
	}
	cliutil.Exit("sweeprun", err)
}

// report is the JSON document sweeprun emits.
type report struct {
	Design    string           `json:"design"`
	Workloads int              `json:"workloads"`
	Plan      sweep.Stats      `json:"plan"`
	Block     int              `json:"block"`
	ElapsedMS float64          `json:"eval_elapsed_ms"`
	PerSec    float64          `json:"workloads_per_sec"`
	Results   []workloadReport `json:"results"`
}

type workloadReport struct {
	Name    string             `json:"name"`
	Summary core.Summary       `json:"summary"`
	SeqAVF  map[string]float64 `json:"seqavf,omitempty"`
}

// intervalReport is the JSON document sweeprun emits with -windows.
type intervalReport struct {
	Design    string                   `json:"design"`
	Workloads int                      `json:"workloads"`
	Windows   int                      `json:"windows_evaluated"`
	Plan      sweep.Stats              `json:"plan"`
	Block     int                      `json:"block"`
	ElapsedMS float64                  `json:"eval_elapsed_ms"`
	Results   []intervalWorkloadReport `json:"results"`
}

// intervalWorkloadReport is one workload's AVF time series: window
// geometry, per-window chip AVF, peak statistics, and (with -nodes) the
// per-sequential-node series, each index-aligned with Windows.
type intervalWorkloadReport struct {
	Name             string               `json:"name"`
	Windows          []windowSpan         `json:"windows"`
	ChipAVF          []float64            `json:"chip_avf"`
	TimeWeightedMean float64              `json:"time_weighted_mean"`
	PeakWindow       int                  `json:"peak_window"`
	PeakChipAVF      float64              `json:"peak_chip_avf"`
	PeakToMean       float64              `json:"peak_to_mean"`
	SeqAVF           map[string][]float64 `json:"seqavf,omitempty"`
}

type windowSpan struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

func run(reg *obs.Registry, arts *cliutil.Artifacts, nlPath, dir, glob string, workers, chunk, blockW int, loop, pseudo float64, nodes, windows bool, out string) error {
	reg.SetManifest("netlist", nlPath)
	reg.SetManifest("pavfdir", dir)
	reg.SetManifest("glob", glob)
	reg.SetManifest("workers", workers)
	reg.SetManifest("block", blockW)
	reg.SetManifest("windows", windows)

	// The whole run is one trace: load, solve/restore, and the sweep all
	// nest under a single root span, so -trace-jsonl output stitches into
	// one tree per invocation.
	root := reg.StartSpan("sweeprun")
	defer root.End()
	ctx := obs.ContextWithSpan(context.Background(), root)

	lsp := root.Child("load")
	f, err := os.Open(nlPath)
	if err != nil {
		return err
	}
	d, err := netlist.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return err
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		return err
	}
	g, err := graph.Build(fd)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.LoopPAVF = loop
	opts.PseudoPAVF = pseudo
	opts.Obs = reg
	a, err := core.NewAnalyzer(g, opts)
	if err != nil {
		return err
	}
	// -windows reads the same directory as interval tables; either way the
	// solve below is primed with the first inputs seen.
	var (
		named []cliutil.NamedInputs
		ivs   []cliutil.NamedIntervals
		first *core.Inputs
	)
	if windows {
		ivs, err = cliutil.ReadIntervalDir(dir, glob)
		if err != nil {
			return err
		}
		first = ivs[0].Table.Windows[0].Inputs
		lsp.SetAttr("workloads", len(ivs))
	} else {
		named, err = cliutil.ReadPAVFDir(dir, glob)
		if err != nil {
			return err
		}
		first = named[0].Inputs
		lsp.SetAttr("workloads", len(named))
	}
	lsp.End()

	// Solve once against the first workload; the sweep re-evaluates the
	// resulting closed forms for every workload, including the first.
	// With -artifacts, a previously solved run of the same design skips
	// the solve and restores the compiled plan from disk.
	st, err := arts.Open(reg)
	if err != nil {
		return err
	}
	res, disp, err := cliutil.SolveWithStore(ctx, "sweeprun", st, a, first, reg)
	if err != nil {
		return err
	}
	switch {
	case disp.Warm():
		fmt.Fprintf(os.Stderr, "sweeprun: warm start from artifact store (fingerprint %016x)\n", a.Fingerprint())
	case disp.Kind == "incremental":
		fmt.Fprintf(os.Stderr, "sweeprun: incremental re-solve from prior artifact (%d of %d FUBs reused, %d iterations)\n",
			disp.Incremental.FubsReused, disp.Incremental.FubsTotal, disp.Incremental.Iterations)
	}
	engOpts := sweep.Options{Workers: workers, ChunkSize: chunk, BlockSize: blockW, Obs: reg}
	if st != nil {
		engOpts.Store = st
	}
	eng := sweep.New(engOpts)
	effBlock := blockW
	switch {
	case effBlock == 0:
		effBlock = sweep.DefaultBlockSize
	case effBlock < 1:
		effBlock = 1
	}

	if windows {
		return runIntervals(ctx, eng, res, d.Name, ivs, nodes, effBlock, out)
	}

	ws := make([]sweep.Workload, len(named))
	for i, ni := range named {
		ws[i] = sweep.Workload{Name: ni.Name, Inputs: ni.Inputs}
	}
	batch, err := eng.SweepContext(ctx, res, ws)
	if err != nil {
		return err
	}

	rep := report{
		Design:    d.Name,
		Workloads: len(batch.Results),
		Plan:      batch.Plan.Stats(),
		Block:     effBlock,
		ElapsedMS: float64(batch.Elapsed.Microseconds()) / 1e3,
		PerSec:    batch.WorkloadsPerSec(),
		Results:   make([]workloadReport, len(batch.Results)),
	}
	for i, r := range batch.Results {
		wr := workloadReport{Name: batch.Names[i], Summary: r.Summarize()}
		if nodes {
			wr.SeqAVF = r.SeqAVFByNode()
		}
		rep.Results[i] = wr
	}

	if err := emitReport(out, rep); err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "sweeprun: %d workloads, %d unique subterms for %d equations, %.0f workloads/sec -> %s\n",
			rep.Workloads, rep.Plan.UniqueSets, rep.Plan.Vertices, rep.PerSec, out)
	}
	return nil
}

// runIntervals is the -windows path: every window of every workload
// becomes one lane of a single blocked batch through the shared compiled
// plan, and the report carries each workload's per-window time series
// with its summary statistics.
func runIntervals(ctx context.Context, eng *sweep.Engine, res *core.Result, design string, ivs []cliutil.NamedIntervals, nodes bool, effBlock int, out string) error {
	ws := make([]sweep.IntervalWorkload, len(ivs))
	for i, ni := range ivs {
		iw := sweep.IntervalWorkload{Name: ni.Name}
		for _, win := range ni.Table.Windows {
			iw.Windows = append(iw.Windows, sweep.WindowSpan{Start: win.Start, End: win.End})
			iw.Inputs = append(iw.Inputs, win.Inputs)
		}
		ws[i] = iw
	}
	batch, err := eng.SweepIntervalsContext(ctx, res, ws)
	if err != nil {
		return err
	}
	rep := intervalReport{
		Design:    design,
		Workloads: len(batch.Workloads),
		Windows:   batch.WindowsEvaluated,
		Plan:      batch.Plan.Stats(),
		Block:     effBlock,
		ElapsedMS: float64(batch.Elapsed.Microseconds()) / 1e3,
		Results:   make([]intervalWorkloadReport, len(batch.Workloads)),
	}
	for i, iw := range batch.Workloads {
		wr := intervalWorkloadReport{
			Name:             iw.Name,
			Windows:          make([]windowSpan, len(iw.Windows)),
			ChipAVF:          iw.Summary.ChipAVF,
			TimeWeightedMean: iw.Summary.TimeWeightedMean,
			PeakWindow:       iw.Summary.PeakWindow,
			PeakChipAVF:      iw.Summary.PeakChipAVF,
			PeakToMean:       iw.Summary.PeakToMean,
		}
		for wi, span := range iw.Windows {
			wr.Windows[wi] = windowSpan{Start: span.Start, End: span.End}
		}
		if nodes {
			// Per-node time series: node -> one AVF per window.
			wr.SeqAVF = make(map[string][]float64)
			for wi, r := range iw.Results {
				for node, avf := range r.SeqAVFByNode() {
					series, ok := wr.SeqAVF[node]
					if !ok {
						series = make([]float64, len(iw.Results))
						wr.SeqAVF[node] = series
					}
					series[wi] = avf
				}
			}
		}
		rep.Results[i] = wr
	}
	if err := emitReport(out, rep); err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "sweeprun: %d workloads, %d windows evaluated -> %s\n",
			rep.Workloads, rep.Windows, out)
	}
	return nil
}

// emitReport writes v as indented JSON to path, or to stdout when path
// is empty.
func emitReport(path string, v any) error {
	w := os.Stdout
	if path != "" {
		g, err := os.Create(path)
		if err != nil {
			return err
		}
		defer g.Close()
		w = g
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return bw.Flush()
}
