package seqavf

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// metricNameRE is the repo's naming convention: a lowercase component
// prefix, a dot, then a lowercase snake_case metric name. Units belong
// in the name's suffix in base SI form ("_seconds", "_bytes") — "_ms"
// style scaled units are banned because fleet dashboards should never
// have to guess a series' scale.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*\.[a-z][a-z0-9_]*$`)

// metricKind maps registry constructor → the family type it registers.
var metricKind = map[string]string{
	"Counter":        "counter",
	"Gauge":          "gauge",
	"Histogram":      "histogram",
	"FixedHistogram": "histogram",
}

// collectMetricNames parses every non-test .go file under the repo and
// returns each metric-name string literal passed to a registry
// constructor, keyed by name with the set of (kind, position) uses.
func collectMetricNames(t *testing.T) map[string]map[string][]string {
	t.Helper()
	found := make(map[string]map[string][]string) // name → kind → positions
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := metricKind[sel.Sel.Name]
			if !ok {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if found[name] == nil {
				found[name] = make(map[string][]string)
			}
			found[name][kind] = append(found[name][kind], fset.Position(lit.Pos()).String())
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatalf("walking repo: %v", err)
	}
	return found
}

// TestMetricNameConvention lints every metric registered anywhere in the
// tree: names must be component.snake_case, must not use scaled-unit
// suffixes, and one name must not be registered as two different metric
// types (a counter and a gauge under one name would corrupt dashboards
// silently — first registration wins at runtime).
func TestMetricNameConvention(t *testing.T) {
	if _, err := os.Stat("internal/obs"); err != nil {
		t.Skip("not running from the repo root")
	}
	found := collectMetricNames(t)
	if len(found) < 40 {
		t.Fatalf("found only %d metric names; the collector is likely broken", len(found))
	}
	for name, kinds := range found {
		var positions []string
		for _, ps := range kinds {
			positions = append(positions, ps...)
		}
		if !metricNameRE.MatchString(name) {
			t.Errorf("metric %q violates component.snake_case (%s)", name, strings.Join(positions, ", "))
		}
		for _, banned := range []string{"_ms", "_us", "_ns", "_kb", "_mb"} {
			if strings.HasSuffix(name, banned) {
				t.Errorf("metric %q uses scaled-unit suffix %q; use base SI units (_seconds, _bytes) (%s)",
					name, banned, strings.Join(positions, ", "))
			}
		}
		if len(kinds) > 1 {
			t.Errorf("metric %q registered as multiple types %v (%s)",
				name, keysOf(kinds), strings.Join(positions, ", "))
		}
	}
	// Anchor a few known names so a silently empty walk cannot pass.
	for _, want := range []string{"server.request_seconds", "sweep.plan_cache_hits", "artifact.restore_seconds"} {
		if _, ok := found[want]; !ok {
			t.Errorf("expected metric %q not found; registration moved or renamed?", want)
		}
	}
}

func keysOf(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
